//! Benefit evaluation with efficient optimizer-call management.
//!
//! Implements the paper's benefit formula (Section III)
//!
//! ```text
//! Benefit(x1..xn; W) = Σ_{s∈W} ( freq_s · (s_old − s_new) − Σ_i freq_s · mc(x_i, s) )
//! ```
//!
//! and the paper's Section VI-C machinery to keep the number of *Evaluate
//! Indexes* optimizer calls small:
//!
//! * **affected sets** — only statements whose basic patterns a candidate
//!   covers can change cost, so only the union of the configuration's
//!   affected sets is re-optimized;
//! * **sub-configurations** — the configuration is split into groups of
//!   candidates with overlapping affected sets (indexes in different
//!   groups cannot interact) and each group is evaluated independently;
//! * **cache** — evaluated sub-configurations are memoized.
//!
//! All three mechanisms can be disabled independently for the ablation
//! experiment (E9 in DESIGN.md).
//!
//! On top of these sits **statement-relevance pruning** (DESIGN.md §11): a
//! relevance matrix derived from the statements' index-matching signatures
//! tells, for each candidate, exactly which statements' plans could consult
//! it. Each per-statement costing is keyed on the canonical *projection* of
//! the sub-configuration onto the statement's relevant candidates and
//! memoized in a statement-level cost cache — adding an irrelevant index or
//! permuting the configuration is a guaranteed hit, so an incremental
//! `benefit(config ∪ {x})` probe re-costs only statements in
//! `relevant(x)`. The optimizer consults the catalog only through index
//! matching (the same covers/kind test the signature encodes), so serving a
//! projection hit is bitwise identical to re-running the optimizer; the
//! pruned and unpruned paths produce byte-identical recommendations (pinned
//! by `tests/determinism.rs`). `prune` toggles the layer for ablation.

use crate::candidate::{CandId, CandidateSet, StmtSet};
use crate::error::{IssueStage, StatementIssue};
use crate::runctl::{GovernorRung, RunController, WarmEntry, WarmKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};
use xia_fault::FaultInjector;
use xia_obs::{Counter, Event, EventJournal, Hist, Telemetry};
use xia_optimizer::{maintenance, Optimizer};
use xia_storage::{CatalogOverlay, Database, IndexStats};
use xia_workloads::Workload;
use xia_xpath::{CoverCache, LinearPath, RelevanceMatrix};

/// Counters exposed for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// Evaluate-mode optimizer invocations (one per statement costed).
    pub optimizer_calls: u64,
    /// Sub-configuration cache hits.
    pub cache_hits: u64,
    /// Sub-configuration cache misses (evaluations performed).
    pub cache_misses: u64,
    /// `benefit()` invocations.
    pub benefit_calls: u64,
    /// Per-statement costings answered from the projection-keyed statement
    /// cost cache.
    pub stmt_cache_hits: u64,
    /// Per-statement costings the pruning layer served without an
    /// optimizer call.
    pub statements_pruned: u64,
    /// Incremental `benefit_delta` probes issued by the searches.
    pub delta_probes: u64,
}

/// A what-if evaluation budget. When either limit is reached, further
/// benefit evaluations fall back to cached sub-configuration values and,
/// failing that, heuristic costs (the degradation ladder: budget → cached
/// → heuristic). Zero means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WhatIfBudget {
    /// Maximum Evaluate-mode optimizer calls (0 = unlimited).
    pub max_calls: u64,
    /// Maximum wall-clock milliseconds spent evaluating (0 = unlimited).
    pub max_millis: u64,
}

impl WhatIfBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A call-count budget.
    pub fn calls(max_calls: u64) -> Self {
        Self {
            max_calls,
            max_millis: 0,
        }
    }

    fn exhausted(&self, calls: u64, elapsed: Duration) -> bool {
        (self.max_calls > 0 && calls >= self.max_calls)
            || (self.max_millis > 0 && elapsed.as_millis() as u64 >= self.max_millis)
    }
}

/// Canonicalizes a sub-configuration cache key: sorted, deduplicated. The
/// same sub-configuration reached in any order maps to one key.
fn canonical_key(mut key: Vec<CandId>) -> Vec<CandId> {
    key.sort_unstable();
    key.dedup();
    key
}

/// Number of memo-cache shards (a power of two; keys spread by FNV hash).
const CACHE_SHARDS: usize = 16;

/// FNV-1a over a canonical key (also used to salt per-task fault streams).
fn key_hash(seed: u64, key: &[CandId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &CandId(id) in key {
        h = (h ^ u64::from(id)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sub-configuration memo cache: canonical-key entries sharded by key
/// hash, each shard behind its own `RwLock`. Reads take a shard read lock
/// only, so concurrent readers on different shards (or the same shard)
/// never serialize behind one another; writes touch a single shard.
#[derive(Debug)]
struct ShardedCache {
    shards: Vec<RwLock<HashMap<Vec<CandId>, f64>>>,
}

impl ShardedCache {
    fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard(&self, key: &[CandId]) -> &RwLock<HashMap<Vec<CandId>, f64>> {
        &self.shards[(key_hash(0, key) % CACHE_SHARDS as u64) as usize]
    }

    fn get(&self, key: &[CandId]) -> Option<f64> {
        self.shard(key)
            .read()
            .ok()
            .and_then(|m| m.get(key).copied())
    }

    fn insert(&self, key: Vec<CandId>, value: f64) {
        if let Ok(mut m) = self.shard(&key).write() {
            m.insert(key, value);
        }
    }
}

/// Minimum task count before `run_indexed` spawns workers. Costing one
/// statement takes single-digit microseconds while a scoped spawn+join of
/// a small worker pool costs ~150µs; fanning out a handful of tasks is a
/// guaranteed slowdown. Small batches (the greedy search's incremental
/// `benefit()` probes) stay serial; large ones (`benefit_batch` over all
/// candidates, baseline costing) parallelize. Results are identical
/// either way.
const PAR_MIN_TASKS: usize = 48;

/// Runs `f(0..n)` across `jobs` scoped worker threads (work-stealing via a
/// shared atomic cursor) and returns the results in index order. With one
/// job — or fewer than [`PAR_MIN_TASKS`] tasks — it degenerates to a plain
/// serial loop, so the results are identical either way; `f` must be a
/// pure function of its index apart from counting into the telemetry
/// handle it is given.
///
/// Each worker thread counts into its own scratch [`Telemetry`], merged
/// into `telemetry` after the join: counter totals are exact and
/// jobs-invariant (addition commutes), but the hot costing loop never
/// touches a shared cache line — contended `fetch_add`s on one counter
/// array would otherwise eat the entire fan-out win.
fn run_indexed<T, F>(n: usize, jobs: usize, telemetry: &Telemetry, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &Telemetry) -> T + Sync,
{
    if jobs <= 1 || n < PAR_MIN_TASKS {
        return (0..n).map(|i| f(i, telemetry)).collect();
    }
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let scratch = Telemetry::new();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &scratch)));
                    }
                    (local, scratch)
                })
            })
            .collect();
        for handle in handles {
            let (local, scratch) = handle.join().expect("what-if worker panicked");
            for (i, v) in local {
                out[i] = Some(v);
            }
            for c in Counter::ALL {
                let count = scratch.get(c);
                if count > 0 {
                    telemetry.add(c, count);
                }
            }
            telemetry.merge_hists_from(&scratch);
        }
    });
    out.into_iter()
        .map(|v| v.expect("every task index was claimed"))
        .collect()
}

/// How one planned statement costing resolves. All nondeterministic
/// decisions (budget, statistics availability) are made by the coordinator
/// at planning time; workers only execute `Optimize` tasks.
#[derive(Debug, Clone, Copy)]
enum TaskKind {
    /// Cost through the optimizer, rolling a fault stream derived from
    /// `salt` (a pure function of the statement and the sub-configuration's
    /// *projection* onto its relevant candidates, so the schedule is
    /// independent of worker interleaving — and of whether an equal
    /// projection was previously served from the statement cache).
    Optimize { salt: u64 },
    /// Answered from the statement cost cache at planning time (projection
    /// hit, or post-exhaustion cached serve); workers skip it.
    Served { cost: f64 },
    /// The what-if budget was exhausted when this task was planned.
    BudgetFallback,
    /// Collection statistics were unavailable when this task was planned.
    StatsFallback,
    /// The resource governor's `heuristic_only` rung was in effect when
    /// this task was planned: no optimizer fan-out for uncached work.
    GovernorFallback,
}

/// Scratch-counter snapshot taken around one worker task while
/// checkpointing is armed, so the task's exact counter footprint can be
/// replayed when a warm-store entry serves it on `--resume`.
fn counter_snapshot(tel: &Telemetry) -> Vec<u64> {
    Counter::ALL.iter().map(|&c| tel.get(c)).collect()
}

/// `(Counter::ALL index, delta)` pairs the task added over `before`.
fn counter_deltas(before: &[u64], tel: &Telemetry) -> Vec<(usize, u64)> {
    Counter::ALL
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| {
            let d = tel.get(c).saturating_sub(before[i]);
            (d > 0).then_some((i, d))
        })
        .collect()
}

/// One planned statement costing against one missed sub-configuration.
#[derive(Debug, Clone)]
struct CostTask {
    /// Index into the batch's missed-group list.
    group: usize,
    /// Statement index in the workload.
    si: usize,
    kind: TaskKind,
    /// Canonical projection of the group onto the statement's relevant
    /// candidates — the statement-cache key an `Optimize` result is
    /// memoized under (`None` for fallback and served tasks).
    proj: Option<Vec<CandId>>,
}

/// Fault-stream phase tags (keep baseline and evaluation schedules apart).
const SALT_BASELINE: u64 = 0xBA5E;
const SALT_EVALUATE: u64 = 0xE7A1;

/// Evaluates candidate-configuration benefits through the optimizer.
///
/// Costing is side-effect-free: candidate configurations are materialized
/// as [`CatalogOverlay`]s over the immutable database instead of being
/// created and dropped in the shared catalogs, so per-statement what-if
/// calls fan out across `jobs` scoped worker threads. The coordinator
/// thread plans every task (cache lookups, budget charging, fault-stream
/// salts) serially and merges results in task order, which keeps
/// recommendations and counter totals byte-identical for any `jobs`.
pub struct BenefitEvaluator<'a> {
    db: &'a Database,
    workload: &'a Workload,
    set: &'a CandidateSet,
    /// Baseline (no-candidate) cost per statement.
    baseline: Vec<f64>,
    /// Derived index statistics per candidate (for maintenance costs).
    istats: HashMap<CandId, IndexStats>,
    /// Total (frequency-weighted) maintenance cost per candidate.
    mc_totals: HashMap<CandId, f64>,
    /// Memoized sub-configuration benefits (query side, before mc).
    cache: ShardedCache,
    /// Per-candidate relevance: the statements whose plans could possibly
    /// consult the candidate (derived from the statements' index-matching
    /// signatures at construction time — no optimizer calls).
    relevance: Vec<StmtSet>,
    /// Content-derived fault salt per statement: the FNV-1a fingerprint
    /// of the statement's cost-identity template key. XORed into every
    /// fault-stream salt in place of the raw statement index, so an
    /// injected fault verdict is a pure function of *what* the statement
    /// is (and the projection being costed), never of where it sits in
    /// the workload — the invariant that keeps CoPhy workload compression
    /// lossless under fault injection.
    stmt_salts: Vec<u64>,
    /// Per-statement cost cache: statement index → canonical projection of
    /// a sub-configuration onto the statement's relevant candidates → cost.
    /// Coordinator-only; maintained identically with pruning on or off so
    /// the budget trajectory is mode-invariant. Tainted (fault/fallback)
    /// costs are never inserted.
    stmt_cache: HashMap<usize, HashMap<Vec<CandId>, f64>>,
    /// What-if budget account: statements actually re-costed (statement
    /// cache misses), charged identically with pruning on or off.
    charged: u64,
    /// Relevance-pruning switch: serve projection hits from the statement
    /// cache instead of re-running the optimizer. Off re-executes every
    /// hit (uncharged) for the ablation; results are byte-identical.
    pub prune: bool,
    /// Fast-path switch (`--no-fastpath` turns it off): route containment
    /// verdicts through the shared [`CoverCache`]. Verdicts are identical
    /// either way; off exists for the A/B parity check.
    fastpath: bool,
    /// Shared containment-verdict cache: the relevance build, greedy
    /// coverage bitmaps, and top-down leftover fill all ask the same
    /// `(general, specific)` questions repeatedly. Coordinator-only, so
    /// its hit counters are invariant under `jobs`.
    cover_cache: CoverCache,
    /// Ablation switch: restrict evaluation to affected statements.
    pub use_affected_sets: bool,
    /// Ablation switch: decompose configurations into sub-configurations.
    pub use_subconfigs: bool,
    /// Ablation switch: memoize sub-configuration evaluations.
    pub use_cache: bool,
    stats: EvalStats,
    /// Telemetry sink for what-if accounting (off unless attached).
    telemetry: Telemetry,
    /// Fault injector that per-task streams are derived from.
    faults: FaultInjector,
    /// What-if call/time budget; exhausted → heuristic fallbacks.
    budget: WhatIfBudget,
    /// When the first `benefit()` call arrived (anchor for the time
    /// budget; `None` until evaluation starts, so a long prepare phase
    /// cannot eat the budget).
    started: Option<Instant>,
    /// Worker threads for what-if fan-out (1 = serial).
    jobs: usize,
    /// Per-statement liveness: quarantined statements are masked out of
    /// every evaluation loop.
    active: Vec<bool>,
    /// Diagnostics for quarantined statements.
    quarantined: Vec<StatementIssue>,
    /// Benefit evaluations answered heuristically (fault or budget).
    fallbacks: u64,
    /// Decision-provenance journal. All emissions happen coordinator-side
    /// (planning and merge phases), so the event stream is jobs-invariant.
    journal: EventJournal,
    /// `BudgetExhausted` is emitted once, at the first fallback planning.
    budget_event_emitted: bool,
    /// Run-lifecycle controller: deadline/cancel polls, the checkpoint
    /// warm store and log, and the governor's memory budget. All
    /// interactions are coordinator-side, so lifecycle decisions are
    /// jobs-invariant.
    ctl: RunController,
    /// Candidate-set digest binding checkpoint files to this run.
    digest: u64,
    /// Resource-governor rung currently in effect (demotions are
    /// one-way).
    rung: GovernorRung,
    /// Approximate live bytes of the sharded memo cache.
    memo_bytes: u64,
    /// Approximate live bytes of the statement cost cache.
    stmt_bytes: u64,
    /// Lifecycle warnings to surface to the caller (abandoned checkpoint
    /// writes).
    warnings: Vec<String>,
}

impl<'a> BenefitEvaluator<'a> {
    /// Creates an evaluator, computing per-statement baseline costs with
    /// no candidate indexes in place.
    pub fn new(db: &'a mut Database, workload: &'a Workload, set: &'a CandidateSet) -> Self {
        Self::with_faults(
            db,
            workload,
            set,
            &FaultInjector::off(),
            WhatIfBudget::unlimited(),
        )
    }

    /// Creates an evaluator configured from [`crate::advisor::AdvisorParams`]:
    /// telemetry, fault injector, and what-if budget are all in effect from
    /// baseline costing onwards.
    pub fn configured(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        params: &crate::advisor::AdvisorParams,
    ) -> Self {
        let mut ev = Self::build(
            db,
            workload,
            set,
            &params.faults,
            params.what_if_budget,
            &params.telemetry,
            params.effective_jobs(),
            params.fastpath,
            &params.journal,
            &params.ctl,
        );
        ev.prune = params.prune;
        ev
    }

    /// Creates an evaluator with a fault injector and what-if budget in
    /// effect from baseline costing onwards. Statements whose collection
    /// is missing are quarantined here; statements whose costing fails
    /// (stats unavailable, injected optimizer fault) get a heuristic
    /// baseline and the run is marked degraded.
    pub fn with_faults(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        faults: &FaultInjector,
        budget: WhatIfBudget,
    ) -> Self {
        Self::build(
            db,
            workload,
            set,
            faults,
            budget,
            &Telemetry::off(),
            1,
            true,
            &EventJournal::off(),
            &RunController::off(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        faults: &FaultInjector,
        budget: WhatIfBudget,
        telemetry: &Telemetry,
        jobs: usize,
        fastpath: bool,
        journal: &EventJournal,
        ctl: &RunController,
    ) -> Self {
        // Setup is the only phase that mutates the database: attach the
        // sinks, refresh statistics, and clear stale virtual indexes. From
        // here on the evaluator holds the database immutably — what-if
        // configurations live in catalog overlays, never in the catalogs.
        db.set_faults(faults);
        db.set_telemetry(telemetry);
        db.runstats_all();
        for name in db
            .collection_names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        {
            if let Some(cat) = db.catalog_mut(&name) {
                cat.drop_all_virtual();
            }
        }
        let db: &'a Database = db;
        // Relevance matrix: one signature per statement, one bitset per
        // candidate. Pure containment work — no optimizer calls.
        let matrix = RelevanceMatrix::new(
            workload
                .entries()
                .iter()
                .map(|e| xia_optimizer::statement_signature(&e.statement))
                .collect(),
        );
        let stmt_salts: Vec<u64> = workload
            .entries()
            .iter()
            .map(|e| xia_xpath::template_fingerprint(&e.statement))
            .collect();
        let cover_cache = CoverCache::new();
        let relevance = set
            .ids()
            .map(|id| {
                let c = set.get(id);
                let mut s = StmtSet::new();
                let rows = if fastpath {
                    matrix.relevant_statements_cached(
                        &c.collection,
                        &c.pattern,
                        c.kind,
                        &cover_cache,
                    )
                } else {
                    matrix.relevant_statements(&c.collection, &c.pattern, c.kind)
                };
                for si in rows {
                    s.insert(si);
                }
                s
            })
            .collect();
        let mut ev = Self {
            db,
            workload,
            set,
            baseline: Vec::new(),
            istats: HashMap::new(),
            mc_totals: HashMap::new(),
            cache: ShardedCache::new(),
            relevance,
            stmt_salts,
            stmt_cache: HashMap::new(),
            charged: 0,
            prune: true,
            fastpath,
            cover_cache,
            use_affected_sets: true,
            use_subconfigs: true,
            use_cache: true,
            stats: EvalStats::default(),
            telemetry: telemetry.clone(),
            faults: faults.clone(),
            budget,
            started: None,
            jobs: jobs.max(1),
            active: vec![true; workload.len()],
            quarantined: Vec::new(),
            fallbacks: 0,
            journal: journal.clone(),
            budget_event_emitted: false,
            ctl: ctl.clone(),
            // The digest only matters for checkpoint binding; skip the
            // render when no controller is armed.
            digest: if ctl.is_enabled() {
                crate::runctl::candidate_digest(set)
            } else {
                0
            },
            rung: GovernorRung::Full,
            memo_bytes: 0,
            stmt_bytes: 0,
            warnings: Vec::new(),
        };
        ev.compute_baselines();
        ev
    }

    fn compute_baselines(&mut self) {
        let n = self.workload.len();
        self.baseline = vec![0.0; n];
        // Plan serially: quarantine missing collections, resolve stats
        // availability, and assign fault-stream salts.
        #[derive(Clone, Copy)]
        enum BasePlan {
            Quarantined,
            StatsFallback,
            Cost { salt: u64 },
        }
        let mut plans = Vec::with_capacity(n);
        for si in 0..n {
            let entry = &self.workload.entries()[si];
            let coll = entry.statement.collection();
            plans.push(if self.db.collection(coll).is_none() {
                self.active[si] = false;
                self.telemetry.incr(Counter::StatementsQuarantined);
                self.quarantined.push(StatementIssue {
                    index: si,
                    text: entry.text.clone(),
                    stage: IssueStage::Cost,
                    detail: format!("unknown collection `{coll}`"),
                });
                BasePlan::Quarantined
            } else if self.db.parts(coll).is_none() {
                // The collection exists but statistics are unavailable.
                BasePlan::StatsFallback
            } else {
                BasePlan::Cost {
                    salt: key_hash(SALT_BASELINE, &[]) ^ self.stmt_salts[si],
                }
            });
        }
        // Warm-store consult (coordinator-side): a resumed run serves any
        // baseline costing the interrupted run already executed.
        let capture = self.ctl.checkpointing();
        let mut warm: Vec<Option<WarmEntry>> = if self.ctl.resumed() {
            plans
                .iter()
                .enumerate()
                .map(|(si, plan)| match plan {
                    BasePlan::Cost { salt } => self.ctl.warm_lookup(&WarmKey {
                        salt: *salt,
                        si,
                        proj: Vec::new(),
                    }),
                    _ => None,
                })
                .collect()
        } else {
            vec![None; n]
        };
        let (db, workload) = (self.db, self.workload);
        let faults = self.faults.clone();
        let warm_ref = &warm;
        let results = run_indexed(n, self.jobs, &self.telemetry.clone(), |si, tel| {
            let BasePlan::Cost { salt } = plans[si] else {
                return (None, Vec::new());
            };
            if warm_ref[si].is_some() {
                // Served from the warm store at merge time.
                return (None, Vec::new());
            }
            let stmt = &workload.entries()[si].statement;
            let Some((collection, catalog, stats)) = db.parts(stmt.collection()) else {
                return (None, Vec::new());
            };
            let before = capture.then(|| counter_snapshot(tel));
            let mut optimizer = Optimizer::with_view(collection, stats, catalog.view());
            optimizer.set_telemetry(tel);
            optimizer.set_faults(&faults.derive_stream(salt));
            let t0 = tel.is_enabled().then(Instant::now);
            let cost = optimizer.try_optimize(stmt).ok().map(|p| p.total_cost);
            if let Some(t0) = t0 {
                tel.record(Hist::WhatIfCall, t0.elapsed());
            }
            let deltas = before.map(|b| counter_deltas(&b, tel)).unwrap_or_default();
            (cost, deltas)
        });
        for (si, (plan, (result, deltas))) in plans.iter().zip(results).enumerate() {
            let served = warm[si].take();
            self.baseline[si] = match (plan, served, result) {
                (BasePlan::Quarantined, _, _) => 0.0,
                (BasePlan::Cost { salt }, Some(entry), _) => {
                    // Warm-served replay: reuse the exact cost and reapply
                    // the original execution's counter footprint, then log
                    // the entry again so the next checkpoint carries it.
                    self.stats.optimizer_calls += 1;
                    self.charged += 1;
                    self.apply_deltas(&entry.deltas);
                    let cost = f64::from_bits(entry.cost_bits);
                    self.ctl.record_costing(
                        WarmKey {
                            salt: *salt,
                            si,
                            proj: Vec::new(),
                        },
                        entry,
                    );
                    cost
                }
                (BasePlan::Cost { salt }, None, Some(cost)) => {
                    self.stats.optimizer_calls += 1;
                    self.charged += 1;
                    self.ctl.record_costing(
                        WarmKey {
                            salt: *salt,
                            si,
                            proj: Vec::new(),
                        },
                        WarmEntry {
                            cost_bits: cost.to_bits(),
                            deltas,
                        },
                    );
                    cost
                }
                (kind, _, _) => {
                    // An optimizer failure here is an injected fault — the
                    // collection and its statistics were resolvable at
                    // planning time.
                    if matches!(kind, BasePlan::Cost { .. }) {
                        self.journal.emit(|| Event::FaultInjected { statement: si });
                    }
                    // The statement is costable in principle (the data is
                    // there); fall back to a heuristic scan estimate so the
                    // run can continue degraded.
                    if matches!(kind, BasePlan::Cost { .. }) {
                        self.stats.optimizer_calls += 1;
                        self.charged += 1;
                    }
                    self.fallbacks += 1;
                    self.telemetry.incr(Counter::CostFallbacks);
                    let coll = self.workload.entries()[si].statement.collection();
                    self.heuristic_statement_cost(coll)
                }
            };
        }
    }

    /// A crude scan-cost proxy used when the optimizer cannot answer:
    /// touch every node of the statement's collection once.
    fn heuristic_statement_cost(&self, coll: &str) -> f64 {
        self.db
            .collection(coll)
            .map(|c| c.total_nodes() as f64)
            .unwrap_or(0.0)
            .max(1.0)
    }

    /// Evaluation counters so far.
    pub fn eval_stats(&self) -> EvalStats {
        self.stats
    }

    /// Diagnostics for statements quarantined during baseline costing.
    pub fn quarantined(&self) -> &[StatementIssue] {
        &self.quarantined
    }

    /// Number of statements still participating in evaluation.
    pub fn active_statements(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Benefit evaluations answered heuristically so far (injected faults,
    /// unavailable statistics, or budget exhaustion).
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks
    }

    /// Optimizer calls charged against the what-if budget so far. Only
    /// statements actually re-costed charge; costings served from the
    /// statement cache are free, with pruning on or off.
    pub fn budget_charged(&self) -> u64 {
        self.charged
    }

    /// Whether any quarantine or fallback degraded this run.
    pub fn is_degraded(&self) -> bool {
        self.fallbacks > 0 || !self.quarantined.is_empty()
    }

    /// The run-lifecycle controller threaded through this evaluator (the
    /// searches poll it at their loop boundaries).
    pub fn ctl(&self) -> &RunController {
        &self.ctl
    }

    /// The resource-governor rung currently in effect.
    pub fn governor_rung(&self) -> GovernorRung {
        self.rung
    }

    /// Lifecycle warnings accumulated so far (abandoned checkpoint
    /// writes), in emission order.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Writes a final checkpoint unconditionally (the advisor calls this
    /// when a run stops early, so `--resume` sees all completed work).
    pub fn final_checkpoint(&mut self) {
        if let Some(w) = self
            .ctl
            .final_checkpoint(self.digest, &self.faults, &self.telemetry)
        {
            self.warnings.push(w);
        }
    }

    /// Replays a warm-store entry's counter footprint into the attached
    /// telemetry (coordinator-side, so totals merge identically to the
    /// original worker execution).
    fn apply_deltas(&self, deltas: &[(usize, u64)]) {
        for &(i, v) in deltas {
            // Out-of-range indexes can only come from a checkpoint written
            // by a different build; ignore them rather than panic.
            if let Some(&c) = Counter::ALL.get(i) {
                self.telemetry.add(c, v);
            }
        }
    }

    /// Inserts one statement costing into the projection-keyed cache
    /// unless the governor demoted past `no_stmt_cache`, tracking the
    /// approximate live bytes the governor budgets against.
    fn insert_stmt_cost(&mut self, si: usize, proj: Vec<CandId>, cost: f64) {
        if self.rung >= GovernorRung::NoStmtCache {
            return;
        }
        self.stmt_bytes += (48 + 8 * proj.len()) as u64;
        self.stmt_cache.entry(si).or_default().insert(proj, cost);
    }

    /// Batch epilogue: walk the governor's degradation ladder one rung if
    /// the cache tally exceeds the memory budget, then let the controller
    /// write a cadence checkpoint. Entirely coordinator-side, so both
    /// decisions are jobs-invariant and replay-invariant.
    fn end_batch(&mut self) {
        if let Some(budget) = self.ctl.mem_budget() {
            if self.memo_bytes + self.stmt_bytes > budget {
                if let Some(next) = self.rung.next() {
                    self.rung = next;
                    match next {
                        GovernorRung::ShrinkMemo => {
                            // Reclaim the memo now; it may regrow, and
                            // renewed pressure demotes further.
                            self.cache = ShardedCache::new();
                            self.memo_bytes = 0;
                        }
                        GovernorRung::NoStmtCache | GovernorRung::HeuristicOnly => {
                            self.cache = ShardedCache::new();
                            self.memo_bytes = 0;
                            self.stmt_cache.clear();
                            self.stmt_bytes = 0;
                        }
                        GovernorRung::Full => {}
                    }
                    let approx_bytes = self.memo_bytes + self.stmt_bytes;
                    self.telemetry.incr(Counter::GovernorDemotions);
                    self.journal.emit(|| Event::GovernorDemoted {
                        rung: next.name().to_string(),
                        approx_bytes,
                    });
                }
            }
        }
        if let Some(w) = self
            .ctl
            .after_batch(self.digest, &self.faults, &self.telemetry)
        {
            self.warnings.push(w);
        }
    }

    /// Attaches a telemetry sink: subsequent optimizer calls, cache
    /// activity, and virtual-index churn (via what-if catalog overlays)
    /// count against it. Baseline costing in [`BenefitEvaluator::new`]
    /// happens before any sink can be attached and is deliberately
    /// uncounted.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Sets the number of what-if worker threads (clamped to at least 1).
    /// Results are identical for any value; only wall-clock time changes.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The number of what-if worker threads in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached telemetry sink (disabled unless
    /// [`BenefitEvaluator::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The attached decision-provenance journal (disabled unless one was
    /// passed through [`crate::advisor::AdvisorParams::journal`]).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The shared containment-verdict cache (counters feed the
    /// `contain_cache_hits` / `contain_fast_rejects` telemetry).
    pub fn cover_cache(&self) -> &CoverCache {
        &self.cover_cache
    }

    /// Containment check routed through the shared cover cache when the
    /// fast path is on, the plain NFA search when it is off. The verdict
    /// is identical either way (pinned by the parity suite).
    pub fn covers(&self, general: &LinearPath, specific: &LinearPath) -> bool {
        let t0 = self.telemetry.is_enabled().then(Instant::now);
        let verdict = if self.fastpath {
            self.cover_cache.covers(general, specific)
        } else {
            xia_xpath::contain::covers(general, specific)
        };
        if let Some(t0) = t0 {
            self.telemetry.record(Hist::ContainCheck, t0.elapsed());
        }
        verdict
    }

    /// Total baseline (no-index) workload cost.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline
            .iter()
            .zip(self.workload.entries())
            .map(|(c, e)| c * e.freq)
            .sum()
    }

    /// The candidate set being evaluated.
    pub fn candidates(&self) -> &CandidateSet {
        self.set
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> &Workload {
        self.workload
    }

    /// Builds one what-if overlay per collection touched by `key`, holding
    /// exactly the sub-configuration's members as virtual indexes. The
    /// shared catalogs are never mutated; candidates whose collection has
    /// no statistics are skipped (mirroring the old install path, which
    /// could not create their virtual indexes either).
    fn build_overlays(&self, key: &[CandId]) -> Vec<(String, CatalogOverlay<'a>)> {
        let mut per: Vec<(String, CatalogOverlay<'a>)> = Vec::new();
        for &id in key {
            let c = self.set.get(id);
            let Some((collection, catalog, stats)) = self.db.parts(&c.collection) else {
                continue;
            };
            let slot = match per.iter().position(|(name, _)| name == &c.collection) {
                Some(i) => &mut per[i].1,
                None => {
                    per.push((
                        c.collection.clone(),
                        CatalogOverlay::with_telemetry(catalog, &self.telemetry),
                    ));
                    &mut per.last_mut().expect("just pushed").1
                }
            };
            slot.add_virtual(collection, stats, &c.pattern, c.kind);
        }
        per
    }

    /// Canonical projection of a (sorted, deduplicated) sub-configuration
    /// key onto one statement's relevant candidates. Filtering preserves
    /// order, so the projection is itself canonical.
    fn projection(&self, key: &[CandId], si: usize) -> Vec<CandId> {
        key.iter()
            .copied()
            .filter(|&id| self.relevance[id.index()].contains(si))
            .collect()
    }

    /// Affected statements of a sub-configuration: the union of member
    /// affected sets (or every statement when the optimization is off).
    fn affected_statements(&self, key: &[CandId]) -> Vec<usize> {
        if self.use_affected_sets {
            let mut u = StmtSet::new();
            for &id in key {
                u.union_with(&self.set.get(id).affected);
            }
            u.iter().collect()
        } else {
            (0..self.workload.len()).collect()
        }
    }

    /// Evaluates a batch of canonical sub-configuration keys and returns
    /// each key's query-side benefit `Σ freq·(old − new)`, in order.
    ///
    /// The coordinator thread does everything order-sensitive serially —
    /// cache lookups (and their hit/miss counters), budget charging,
    /// fault-stream salting, overlay construction — then fans the planned
    /// optimizer calls out across workers and merges their results back in
    /// task order. Costs are pure functions of the plan, so the returned
    /// values, the memo cache, and every counter total are identical for
    /// any `jobs` value.
    fn eval_groups(&mut self, keys: Vec<Vec<CandId>>) -> Vec<f64> {
        // The time budget is anchored at the first evaluation, not at
        // evaluator construction: a long prepare phase must not eat it.
        let started = *self.started.get_or_insert_with(Instant::now);
        // Coordinator-side stop check: latches a deadline crossing or a
        // cancellation. The current batch still evaluates — the searches
        // observe the latch at their next loop boundary and unwind.
        self.ctl.poll();

        // Phase 1 (coordinator): cache lookups and miss collection.
        enum Slot {
            Done(f64),
            Miss(usize),
        }
        // Journal bookkeeping mirrors the slot list: each input key's
        // member patterns plus whether it was served without a fresh
        // costing (memo hit or in-batch duplicate).
        let journal_on = self.journal.is_enabled();
        let mut journal_slots: Vec<(Vec<String>, bool)> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(keys.len());
        let mut misses: Vec<Vec<CandId>> = Vec::new();
        for key in keys {
            debug_assert!(key.windows(2).all(|w| w[0] < w[1]), "canonical keys");
            let patterns: Vec<String> = if journal_on {
                key.iter()
                    .map(|&id| self.set.get(id).pattern.to_string())
                    .collect()
            } else {
                Vec::new()
            };
            if self.use_cache {
                if let Some(v) = self.cache.get(&key) {
                    self.stats.cache_hits += 1;
                    self.telemetry.incr(Counter::BenefitCacheHits);
                    slots.push(Slot::Done(v));
                    journal_slots.push((patterns, true));
                    continue;
                }
            }
            if let Some(i) = misses.iter().position(|k| k == &key) {
                // A duplicate within this batch: evaluate once, fan out
                // once, charge the budget once — even with the memo cache
                // disabled, identical configs in one batch must not cost
                // the workload twice. (With the cache on, a serial
                // evaluation would have found the first occurrence
                // memoized, so it counts as a hit.)
                if self.use_cache {
                    self.stats.cache_hits += 1;
                    self.telemetry.incr(Counter::BenefitCacheHits);
                }
                slots.push(Slot::Miss(i));
                journal_slots.push((patterns, true));
                continue;
            }
            if self.use_cache {
                self.stats.cache_misses += 1;
                self.telemetry.incr(Counter::BenefitCacheMisses);
            }
            slots.push(Slot::Miss(misses.len()));
            journal_slots.push((patterns, false));
            misses.push(key);
        }
        if misses.is_empty() {
            let out: Vec<f64> = slots
                .into_iter()
                .map(|s| match s {
                    Slot::Done(v) => v,
                    Slot::Miss(_) => 0.0,
                })
                .collect();
            self.emit_what_if_events(&journal_slots, &out);
            return out;
        }

        // Phase 2 (coordinator): plan per-statement tasks. Statement-cache
        // lookups, budget charging, and fault-stream salts all happen
        // here, in deterministic order — workers never touch them. Each
        // costing is keyed on the projection of the group onto the
        // statement's relevant candidates: a plan can only consult
        // matching indexes, so equal projections have bitwise-equal
        // costs. A projection hit is served without an optimizer call
        // when pruning is on, and replayed — uncharged, under the same
        // projection-derived fault salt, hence bitwise identically — when
        // it is off; the budget and the cache evolve identically either
        // way.
        let mut tasks: Vec<CostTask> = Vec::new();
        for (group, key) in misses.iter().enumerate() {
            for si in self.affected_statements(key) {
                if !self.active[si] {
                    continue;
                }
                let proj = self.projection(key, si);
                let cached = self.stmt_cache.get(&si).and_then(|m| m.get(&proj)).copied();
                let exhausted = self.budget.exhausted(self.charged, started.elapsed());
                let (kind, proj) = match cached {
                    // Pruning serves every projection hit; with pruning
                    // off, hits are still served once the budget is gone
                    // (the PR2 ladder: budget → cached → heuristic).
                    Some(cost) if self.prune || exhausted => {
                        self.stats.stmt_cache_hits += 1;
                        self.telemetry.incr(Counter::StmtCacheHits);
                        if self.prune {
                            self.stats.statements_pruned += 1;
                            self.telemetry.incr(Counter::StatementsPruned);
                        }
                        (TaskKind::Served { cost }, None)
                    }
                    // Ablation replay: the cached value exists, so the
                    // statement's collection is known costable and the
                    // call is not charged against the budget.
                    Some(_) => (
                        TaskKind::Optimize {
                            salt: key_hash(SALT_EVALUATE, &proj) ^ self.stmt_salts[si],
                        },
                        Some(proj),
                    ),
                    None if exhausted => {
                        if !self.budget_event_emitted {
                            self.budget_event_emitted = true;
                            let charged = self.charged;
                            self.journal.emit(|| Event::BudgetExhausted { charged });
                        }
                        (TaskKind::BudgetFallback, None)
                    }
                    None => {
                        let coll = self.workload.entries()[si].statement.collection();
                        if self.db.parts(coll).is_none() {
                            (TaskKind::StatsFallback, None)
                        } else if self.rung >= GovernorRung::HeuristicOnly {
                            // Bottom governor rung: uncached costings stop
                            // fanning out to the optimizer entirely.
                            (TaskKind::GovernorFallback, None)
                        } else {
                            self.charged += 1;
                            (
                                TaskKind::Optimize {
                                    salt: key_hash(SALT_EVALUATE, &proj) ^ self.stmt_salts[si],
                                },
                                Some(proj),
                            )
                        }
                    }
                };
                tasks.push(CostTask {
                    group,
                    si,
                    kind,
                    proj,
                });
            }
        }

        // Phase 3 (coordinator): one overlay set per missed group that
        // still needs real optimizer work, built serially so virtual-index
        // churn counters stay deterministic. Fully-served groups skip the
        // overlay — their virtual indexes would never be probed.
        let mut needs_overlay = vec![false; misses.len()];
        for task in &tasks {
            if matches!(task.kind, TaskKind::Optimize { .. }) {
                needs_overlay[task.group] = true;
            }
        }
        let overlays: Vec<Vec<(String, CatalogOverlay<'a>)>> = misses
            .iter()
            .enumerate()
            .map(|(g, key)| {
                if needs_overlay[g] {
                    self.build_overlays(key)
                } else {
                    Vec::new()
                }
            })
            .collect();

        // Warm-store consult (coordinator-side): a resumed run serves any
        // optimizer task the interrupted run already executed. The
        // overlays above are still built — their virtual-index churn
        // counters are part of the uninterrupted run's footprint.
        let capture = self.ctl.checkpointing();
        let mut warm: Vec<Option<WarmEntry>> = if self.ctl.resumed() {
            tasks
                .iter()
                .map(|t| match t.kind {
                    TaskKind::Optimize { salt } => self.ctl.warm_lookup(&WarmKey {
                        salt,
                        si: t.si,
                        proj: t.proj.clone().unwrap_or_default(),
                    }),
                    _ => None,
                })
                .collect()
        } else {
            vec![None; tasks.len()]
        };

        // Phase 4 (workers): pure costing, fanned out over `jobs` threads.
        let (db, workload) = (self.db, self.workload);
        let faults = self.faults.clone();
        let warm_ref = &warm;
        let results = run_indexed(tasks.len(), self.jobs, &self.telemetry.clone(), |i, tel| {
            let task = &tasks[i];
            let TaskKind::Optimize { salt } = task.kind else {
                return (None, Vec::new());
            };
            if warm_ref[i].is_some() {
                // Served from the warm store at merge time.
                return (None, Vec::new());
            }
            let stmt = &workload.entries()[task.si].statement;
            let coll = stmt.collection();
            let Some((collection, catalog, stats)) = db.parts(coll) else {
                return (None, Vec::new());
            };
            let view = overlays[task.group]
                .iter()
                .find(|(name, _)| name == coll)
                .map(|(_, ov)| ov.view())
                .unwrap_or_else(|| catalog.view());
            let before = capture.then(|| counter_snapshot(tel));
            let mut optimizer = Optimizer::with_view(collection, stats, view);
            optimizer.set_telemetry(tel);
            optimizer.set_faults(&faults.derive_stream(salt));
            let t0 = tel.is_enabled().then(Instant::now);
            let cost = optimizer.try_optimize(stmt).ok().map(|p| p.total_cost);
            if let Some(t0) = t0 {
                tel.record(Hist::WhatIfCall, t0.elapsed());
            }
            let deltas = before.map(|b| counter_deltas(&b, tel)).unwrap_or_default();
            (cost, deltas)
        });

        // Phase 5 (coordinator): merge in task order — the floating-point
        // summation order is fixed regardless of worker interleaving.
        let mut totals = vec![0.0f64; misses.len()];
        let mut tainted = vec![false; misses.len()];
        for (i, (task, (result, deltas))) in tasks.iter().zip(results).enumerate() {
            let served = warm[i].take();
            let new_cost = match (task.kind, served, result) {
                (TaskKind::Served { cost }, _, _) => cost,
                (TaskKind::Optimize { salt }, Some(entry), _) => {
                    // Warm-served replay: reuse the exact cost, reapply the
                    // original counter footprint, and re-log the entry so
                    // the next checkpoint carries it.
                    self.stats.optimizer_calls += 1;
                    self.apply_deltas(&entry.deltas);
                    let cost = f64::from_bits(entry.cost_bits);
                    if let Some(proj) = &task.proj {
                        self.insert_stmt_cost(task.si, proj.clone(), cost);
                        self.ctl.record_costing(
                            WarmKey {
                                salt,
                                si: task.si,
                                proj: proj.clone(),
                            },
                            entry,
                        );
                    }
                    cost
                }
                (TaskKind::Optimize { salt }, None, Some(cost)) => {
                    self.stats.optimizer_calls += 1;
                    // Memoize under the projection key: any configuration
                    // with the same projection onto this statement has
                    // bitwise the same cost.
                    if let Some(proj) = &task.proj {
                        self.insert_stmt_cost(task.si, proj.clone(), cost);
                        self.ctl.record_costing(
                            WarmKey {
                                salt,
                                si: task.si,
                                proj: proj.clone(),
                            },
                            WarmEntry {
                                cost_bits: cost.to_bits(),
                                deltas,
                            },
                        );
                    }
                    cost
                }
                (kind, _, _) => {
                    // The degradation ladder's heuristic indexed-cost
                    // estimate: half the baseline — optimistic enough that
                    // candidates still rank by affected baseline mass.
                    if matches!(kind, TaskKind::Optimize { .. }) {
                        self.stats.optimizer_calls += 1;
                        // A planned optimizer call that came back empty is
                        // an injected (or real) optimizer failure.
                        let si = task.si;
                        self.journal.emit(|| Event::FaultInjected { statement: si });
                    }
                    if matches!(kind, TaskKind::BudgetFallback) {
                        self.telemetry.incr(Counter::WhatIfBudgetExhausted);
                    }
                    self.fallbacks += 1;
                    self.telemetry.incr(Counter::CostFallbacks);
                    tainted[task.group] = true;
                    0.5 * self.baseline[task.si]
                }
            };
            let entry = &self.workload.entries()[task.si];
            totals[task.group] += entry.freq * (self.baseline[task.si] - new_cost);
        }
        // Discarding the overlays here (not in a worker) keeps the
        // virtual-indexes-dropped counter deterministic too.
        drop(overlays);

        // Heuristic answers are not memoized: a later evaluation inside
        // budget (or past the fault) should get the real number. The
        // bottom governor rung stops memo inserts too.
        if self.use_cache && self.rung < GovernorRung::HeuristicOnly {
            for ((key, &value), &bad) in misses.iter().zip(&totals).zip(&tainted) {
                if !bad {
                    self.memo_bytes += (32 + 8 * key.len()) as u64;
                    self.cache.insert(key.clone(), value);
                }
            }
        }
        let out: Vec<f64> = slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(v) => v,
                Slot::Miss(i) => totals[i],
            })
            .collect();
        self.emit_what_if_events(&journal_slots, &out);
        // Governor ladder + cadence checkpoint: only batches that actually
        // costed something count (fully-served batches change no state
        // worth persisting).
        self.end_batch();
        out
    }

    /// Emits one `WhatIfEvaluated` event per input slot, in slot order,
    /// pairing each configuration with its final query-side benefit. Runs
    /// on the coordinator after the merge, so the journal stream is
    /// identical regardless of worker count.
    fn emit_what_if_events(&self, journal_slots: &[(Vec<String>, bool)], values: &[f64]) {
        if !self.journal.is_enabled() {
            return;
        }
        for ((config, cache_hit), &cost) in journal_slots.iter().zip(values) {
            self.journal.emit(|| Event::WhatIfEvaluated {
                config: config.clone(),
                cost,
                cache_hit: *cache_hit,
            });
        }
    }

    /// Benefit of a configuration per the paper's formula. The
    /// configuration is canonicalized first: duplicate members describe
    /// one index, so they are evaluated — and charged maintenance cost —
    /// once.
    pub fn benefit(&mut self, config: &[CandId]) -> f64 {
        self.stats.benefit_calls += 1;
        self.telemetry.incr(Counter::BenefitEvaluations);
        let _evaluate = self.telemetry.span("evaluate");
        if config.is_empty() {
            return 0.0;
        }
        let config = canonical_key(config.to_vec());
        let groups = if self.use_subconfigs {
            self.decompose(&config)
        } else {
            vec![config.clone()]
        };
        let values = self.eval_groups(groups.into_iter().map(canonical_key).collect());
        let mut total: f64 = values.iter().sum();
        for &id in &config {
            total -= self.mc_total(id);
        }
        total
    }

    /// Benefit of `base ∪ {add}` — the incremental probe the greedy and
    /// top-down searches issue each round. The value (and every counter a
    /// plain [`BenefitEvaluator::benefit`] call would bump) is identical
    /// to evaluating the union directly; the saving comes from the
    /// relevance-pruning layer, which re-costs only statements relevant to
    /// `add` (or whose projection the addition changed) and serves the
    /// rest from the group and statement caches.
    pub fn benefit_delta(&mut self, base: &[CandId], add: CandId) -> f64 {
        self.stats.delta_probes += 1;
        self.telemetry.incr(Counter::DeltaProbes);
        let mut config = base.to_vec();
        config.push(add);
        self.benefit(&config)
    }

    /// Benefits of many configurations, planned and costed as one batch:
    /// every sub-configuration group of every input fans out into the same
    /// worker pool, which is where parallel evaluation pays off most (the
    /// per-candidate scoring pass evaluates dozens of independent
    /// singletons). Equivalent to mapping [`BenefitEvaluator::benefit`]
    /// over `configs`, including all counter totals.
    pub fn benefit_batch(&mut self, configs: &[Vec<CandId>]) -> Vec<f64> {
        let _evaluate = self.telemetry.span("evaluate");
        // Canonicalize every config up front: identical configurations in
        // one batch (after sorting and deduplication) share their group
        // keys, which the in-batch duplicate check in `eval_groups`
        // collapses to a single fan-out — and a single budget charge.
        let canon: Vec<Vec<CandId>> = configs.iter().map(|c| canonical_key(c.clone())).collect();
        let mut keys: Vec<Vec<CandId>> = Vec::new();
        let mut ranges = Vec::with_capacity(canon.len());
        for config in &canon {
            self.stats.benefit_calls += 1;
            self.telemetry.incr(Counter::BenefitEvaluations);
            let start = keys.len();
            if !config.is_empty() {
                let groups = if self.use_subconfigs {
                    self.decompose(config)
                } else {
                    vec![config.clone()]
                };
                keys.extend(groups.into_iter().map(canonical_key));
            }
            ranges.push(start..keys.len());
        }
        let values = self.eval_groups(keys);
        canon
            .iter()
            .zip(ranges)
            .map(|(config, range)| {
                let mut total: f64 = values[range].iter().sum();
                for &id in config {
                    total -= self.mc_total(id);
                }
                total
            })
            .collect()
    }

    /// Estimated workload cost under a configuration
    /// (`baseline − benefit`). Fully reuses the group and statement
    /// caches: pricing a configuration the search already probed costs no
    /// optimizer calls.
    pub fn workload_cost(&mut self, config: &[CandId]) -> f64 {
        self.baseline_cost() - self.benefit(config)
    }

    /// Estimated speedup: baseline cost over configured cost.
    pub fn speedup(&mut self, config: &[CandId]) -> f64 {
        let base = self.baseline_cost();
        let cost = self.workload_cost(config);
        if cost <= 0.0 {
            f64::INFINITY
        } else {
            base / cost
        }
    }

    /// Splits a configuration into sub-configurations of candidates with
    /// transitively overlapping affected sets.
    pub fn decompose(&self, config: &[CandId]) -> Vec<Vec<CandId>> {
        let n = config.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (self.set.get(config[i]), self.set.get(config[j]));
                if a.affected.overlaps(&b.affected) {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<CandId>> = HashMap::new();
        for (i, &cand) in config.iter().enumerate().take(n) {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(cand);
        }
        let mut out: Vec<Vec<CandId>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort();
        out
    }

    /// Which members of `config` are actually used in some statement's
    /// best plan when the whole configuration is installed — the paper's
    /// "compile all workload queries ... and eliminate indexes that are
    /// never used" check, used by greedy-with-heuristics as a final
    /// redundancy pass. The configuration is materialized as catalog
    /// overlays and statements are compiled across the worker pool; the
    /// result is order-insensitive (sorted), so the fan-out cannot change
    /// it.
    pub fn used_candidates(&mut self, config: &[CandId]) -> Vec<CandId> {
        if config.is_empty() {
            return Vec::new();
        }
        // Map (collection, pattern, kind) → CandId to resolve the overlay
        // index definitions a plan used back to candidates.
        let mut by_key: HashMap<(String, String, xia_xpath::ValueKind), CandId> = HashMap::new();
        for &id in config {
            let c = self.set.get(id);
            by_key.insert((c.collection.clone(), c.pattern.to_string(), c.kind), id);
        }
        let overlays = self.build_overlays(config);
        let stmts: Vec<usize> = self
            .affected_statements(config)
            .into_iter()
            .filter(|&si| self.active[si])
            .collect();
        // Compiling (Evaluate mode without fault rolls) consumes one
        // optimizer call per statement with statistics available — counted
        // at planning time so the total is deterministic.
        let planned: u64 = stmts
            .iter()
            .filter(|&&si| {
                let coll = self.workload.entries()[si].statement.collection();
                self.db.parts(coll).is_some()
            })
            .count() as u64;
        let (db, workload) = (self.db, self.workload);
        let by_key = &by_key;
        let overlays = &overlays;
        let results = run_indexed(stmts.len(), self.jobs, &self.telemetry.clone(), |i, tel| {
            let stmt = &workload.entries()[stmts[i]].statement;
            let coll = stmt.collection();
            let Some((collection, catalog, stats)) = db.parts(coll) else {
                return Vec::new();
            };
            let view = overlays
                .iter()
                .find(|(name, _)| name == coll)
                .map(|(_, ov)| ov.view())
                .unwrap_or_else(|| catalog.view());
            let mut optimizer = Optimizer::with_view(collection, stats, view);
            optimizer.set_telemetry(tel);
            let plan = optimizer.optimize(stmt);
            plan.used_indexes()
                .into_iter()
                .filter_map(|ix| {
                    let def = view.get(ix)?;
                    by_key
                        .get(&(coll.to_string(), def.pattern.to_string(), def.kind))
                        .copied()
                })
                .collect::<Vec<CandId>>()
        });
        self.stats.optimizer_calls += planned;
        self.charged += planned;
        let mut used: Vec<CandId> = Vec::new();
        for cid in results.into_iter().flatten() {
            if !used.contains(&cid) {
                used.push(cid);
            }
        }
        used.sort_unstable();
        used
    }

    fn derived_istats(&mut self, id: CandId) -> IndexStats {
        if let Some(s) = self.istats.get(&id) {
            return s.clone();
        }
        let c = self.set.get(id);
        let (coll, pattern, kind) = (c.collection.clone(), c.pattern.clone(), c.kind);
        let stats = match self.db.parts(&coll) {
            Some((collection, _, stats)) => {
                self.telemetry.incr(Counter::StatsDerivations);
                xia_storage::Catalog::derive_stats(collection, stats, &pattern, kind).1
            }
            None => IndexStats::default(),
        };
        self.istats.insert(id, stats.clone());
        stats
    }

    /// Total frequency-weighted maintenance cost of one candidate over the
    /// workload's modification statements.
    pub fn mc_total(&mut self, id: CandId) -> f64 {
        if let Some(&v) = self.mc_totals.get(&id) {
            return v;
        }
        let istats = self.derived_istats(id);
        let c = self.set.get(id);
        let (coll, pattern, kind) = (c.collection.clone(), c.pattern.clone(), c.kind);
        let mut total = 0.0;
        for entry in self.workload.entries() {
            if !entry.statement.is_modification() || entry.statement.collection() != coll {
                continue;
            }
            let Some((collection, catalog, stats)) = self.db.parts(&coll) else {
                continue;
            };
            let mut optimizer = Optimizer::new(collection, stats, catalog);
            optimizer.set_telemetry(&self.telemetry);
            let mc = maintenance::maintenance_cost(
                &pattern,
                kind,
                &istats,
                &entry.statement,
                &optimizer,
                stats,
                optimizer.cost_model(),
            );
            total += entry.freq * mc;
        }
        self.mc_totals.insert(id, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_candidates, size_candidates};
    use crate::generalize::generalize_set;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn setup() -> (Database, Workload) {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        (db, w)
    }

    fn candidates(db: &mut Database, w: &Workload) -> CandidateSet {
        let mut set = enumerate_candidates(db, w);
        generalize_set(&mut set);
        size_candidates(db, &mut set);
        set
    }

    #[test]
    fn empty_config_has_zero_benefit() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        assert_eq!(ev.benefit(&[]), 0.0);
        assert!(ev.baseline_cost() > 0.0);
    }

    #[test]
    fn single_selective_index_has_positive_benefit() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let sym = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .expect("symbol candidate enumerated");
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let b = ev.benefit(&[sym]);
        assert!(b > 0.0, "benefit = {b}");
        assert!(ev.speedup(&[sym]) > 1.0);
    }

    #[test]
    fn benefit_is_monotone_enough_for_all_vs_one() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let one = vec![all[0]];
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let b_all = ev.benefit(&all);
        let b_one = ev.benefit(&one);
        assert!(b_all >= b_one, "all={b_all} one={b_one}");
    }

    #[test]
    fn decompose_groups_by_affected_overlap() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let all = set.basic_ids();
        let groups = ev.decompose(&all);
        // There is more than one group (queries over three collections),
        // and groups partition the config.
        assert!(groups.len() > 1);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, all.len());
        // Candidates from different collections never share a group.
        for g in &groups {
            let coll = &set.get(g[0]).collection;
            assert!(g.iter().all(|&id| &set.get(id).collection == coll));
        }
        let _ = ev.benefit(&all);
    }

    #[test]
    fn cache_reduces_optimizer_calls() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let calls0 = ev.eval_stats().optimizer_calls;
        let b1 = ev.benefit(&all);
        let calls1 = ev.eval_stats().optimizer_calls;
        let b2 = ev.benefit(&all);
        let calls2 = ev.eval_stats().optimizer_calls;
        assert_eq!(b1, b2);
        assert!(calls1 > calls0);
        assert_eq!(calls2, calls1, "second evaluation must be fully cached");
        assert!(ev.eval_stats().cache_hits > 0);
    }

    #[test]
    fn affected_sets_limit_work() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let one = vec![set.basic_ids()[0]];
        // With affected sets on.
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let base_calls = ev.eval_stats().optimizer_calls;
        ev.benefit(&one);
        let with = ev.eval_stats().optimizer_calls - base_calls;
        // With affected sets off (must re-cost every statement).
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.use_affected_sets = false;
        ev2.use_cache = false;
        let base_calls2 = ev2.eval_stats().optimizer_calls;
        ev2.benefit(&one);
        let without = ev2.eval_stats().optimizer_calls - base_calls2;
        assert!(with < without, "with={with} without={without}");
    }

    #[test]
    fn maintenance_cost_reduces_benefit_for_update_workloads() {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let mut texts = tpox::queries(&cfg);
        let n_queries = texts.len();
        texts.extend(tpox::update_mix(&cfg));
        let w = Workload::from_texts(texts.iter().map(|s| s.as_str())).unwrap();
        let set = candidates(&mut db, &w);
        let sym = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .unwrap();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let mc = ev.mc_total(sym);
        assert!(
            mc > 0.0,
            "insert of a Security must charge the symbol index"
        );
        let _ = n_queries;
    }

    #[test]
    fn subconfig_results_compose() {
        // benefit(config) must equal the sum over its decomposition when
        // evaluated without subconfig decomposition (no cross-group
        // interaction by construction).
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let with_sub = ev.benefit(&all);
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.use_subconfigs = false;
        let without_sub = ev2.benefit(&all);
        let rel = (with_sub - without_sub).abs() / without_sub.abs().max(1.0);
        assert!(rel < 1e-9, "with={with_sub} without={without_sub}");
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        // The memo cache keys on the canonical (sorted) sub-configuration:
        // re-evaluating a permutation of an already-costed configuration
        // must be served entirely from cache.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let fwd = set.basic_ids();
        assert!(fwd.len() >= 2);
        let mut rev = fwd.clone();
        rev.reverse();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let b1 = ev.benefit(&fwd);
        let stats1 = ev.eval_stats();
        let b2 = ev.benefit(&rev);
        let stats2 = ev.eval_stats();
        assert_eq!(b1.to_bits(), b2.to_bits());
        assert_eq!(
            stats2.optimizer_calls, stats1.optimizer_calls,
            "permuted configuration re-costed instead of cache-served"
        );
        assert_eq!(stats2.cache_misses, stats1.cache_misses);
        assert!(stats2.cache_hits > stats1.cache_hits);
    }

    #[test]
    fn duplicate_configs_in_batch_cost_once_without_cache() {
        // Identical configurations inside one batch must collapse to a
        // single fan-out and a single budget charge even with the memo
        // cache disabled — double costing was the PR 4 bugfix target.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let one = vec![set.basic_ids()[0]];
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        ev.use_cache = false;
        let calls0 = ev.eval_stats().optimizer_calls;
        let charged0 = ev.budget_charged();
        let dup = ev.benefit_batch(&[one.clone(), one.clone(), one.clone()]);
        let dup_calls = ev.eval_stats().optimizer_calls - calls0;
        let dup_charged = ev.budget_charged() - charged0;
        assert_eq!(dup[0].to_bits(), dup[1].to_bits());
        assert_eq!(dup[0].to_bits(), dup[2].to_bits());

        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.use_cache = false;
        let calls1 = ev2.eval_stats().optimizer_calls;
        let charged1 = ev2.budget_charged();
        let single = ev2.benefit_batch(std::slice::from_ref(&one));
        assert_eq!(single[0].to_bits(), dup[0].to_bits());
        assert_eq!(
            ev2.eval_stats().optimizer_calls - calls1,
            dup_calls,
            "duplicates in a batch were costed more than once"
        );
        assert_eq!(
            ev2.budget_charged() - charged1,
            dup_charged,
            "duplicates in a batch were charged more than once"
        );
    }

    #[test]
    fn duplicate_members_in_config_collapse() {
        // A configuration is a set: listing a member twice must evaluate
        // (and charge maintenance for) one index.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let a = set.basic_ids()[0];
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let once = ev.benefit(&[a]);
        let twice = ev.benefit(&[a, a]);
        assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn pruned_and_unpruned_benefits_match_bitwise() {
        // The relevance-pruning layer is a pure evaluation shortcut: with
        // the memo cache disabled (so the statement cache carries the whole
        // load), every benefit value must stay bitwise identical to the
        // unpruned path, at strictly fewer optimizer calls.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let probe = |prune: bool, db: &mut Database| -> (Vec<u64>, u64, u64, EvalStats) {
            let mut ev = BenefitEvaluator::new(db, &w, &set);
            ev.prune = prune;
            ev.use_cache = false;
            let mut bits = Vec::new();
            let mut base: Vec<CandId> = Vec::new();
            for &id in all.iter().take(4) {
                bits.push(ev.benefit_delta(&base, id).to_bits());
                base.push(id);
            }
            bits.push(ev.benefit(&all).to_bits());
            bits.push(ev.benefit(&all).to_bits());
            (
                bits,
                ev.eval_stats().optimizer_calls,
                ev.budget_charged(),
                ev.eval_stats(),
            )
        };
        let (bits_on, calls_on, charged_on, stats_on) = probe(true, &mut db);
        let (bits_off, calls_off, charged_off, stats_off) = probe(false, &mut db);
        assert_eq!(bits_on, bits_off, "pruning changed a benefit value");
        assert_eq!(
            charged_on, charged_off,
            "pruning changed the budget trajectory"
        );
        assert!(
            calls_on < calls_off,
            "pruning saved no optimizer calls: on={calls_on} off={calls_off}"
        );
        assert!(stats_on.statements_pruned > 0);
        assert!(stats_on.stmt_cache_hits > 0);
        assert_eq!(stats_off.statements_pruned, 0);
        assert_eq!(stats_on.delta_probes, 4);
        assert_eq!(stats_off.delta_probes, 4);
    }

    #[test]
    fn delta_probe_matches_fresh_union_evaluation() {
        // benefit_delta(base, x) must return bitwise the same value a
        // fresh evaluator computes for base ∪ {x}, while re-costing only
        // what the addition touched.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        assert!(all.len() >= 3);
        let base = vec![all[0], all[1]];
        let add = all[2];

        let (delta, delta_calls, probes) = {
            let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
            let _ = ev.benefit(&base);
            let calls_before = ev.eval_stats().optimizer_calls;
            let delta = ev.benefit_delta(&base, add);
            (
                delta,
                ev.eval_stats().optimizer_calls - calls_before,
                ev.eval_stats().delta_probes,
            )
        };
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        let union = vec![all[0], all[1], all[2]];
        let fresh = ev2.benefit(&union);
        let fresh_calls = ev2.eval_stats().optimizer_calls;
        assert_eq!(delta.to_bits(), fresh.to_bits());
        assert!(
            delta_calls < fresh_calls,
            "delta probe re-costed as much as a fresh evaluation: \
             delta={delta_calls} fresh={fresh_calls}"
        );
        assert_eq!(probes, 1);
    }

    #[test]
    fn repeated_evaluation_charges_no_further_budget() {
        // Only statements actually re-costed charge the what-if budget:
        // re-evaluating a configuration (in any member order) is free.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let fwd = set.basic_ids();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let _ = ev.benefit(&fwd);
        let charged = ev.budget_charged();
        let _ = ev.benefit(&fwd);
        let _ = ev.benefit(&rev);
        assert_eq!(
            ev.budget_charged(),
            charged,
            "a cache-served evaluation charged the budget"
        );
    }

    #[test]
    fn time_budget_clock_starts_at_first_benefit_call() {
        // The wall-clock budget must account evaluation time, not the time
        // since evaluator construction — expensive setup (or an idle
        // advisor session) between construction and the first benefit()
        // call must not burn the budget.
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let budget = WhatIfBudget {
            max_calls: 0,
            max_millis: 500,
        };
        let mut ev =
            BenefitEvaluator::with_faults(&mut db, &w, &set, &FaultInjector::off(), budget);
        std::thread::sleep(Duration::from_millis(600));
        let b = ev.benefit(&set.basic_ids());
        assert_eq!(
            ev.fallback_count(),
            0,
            "budget clock counted pre-evaluation time"
        );
        assert!(b > 0.0);
    }
}
