//! Benefit evaluation with efficient optimizer-call management.
//!
//! Implements the paper's benefit formula (Section III)
//!
//! ```text
//! Benefit(x1..xn; W) = Σ_{s∈W} ( freq_s · (s_old − s_new) − Σ_i freq_s · mc(x_i, s) )
//! ```
//!
//! and the paper's Section VI-C machinery to keep the number of *Evaluate
//! Indexes* optimizer calls small:
//!
//! * **affected sets** — only statements whose basic patterns a candidate
//!   covers can change cost, so only the union of the configuration's
//!   affected sets is re-optimized;
//! * **sub-configurations** — the configuration is split into groups of
//!   candidates with overlapping affected sets (indexes in different
//!   groups cannot interact) and each group is evaluated independently;
//! * **cache** — evaluated sub-configurations are memoized.
//!
//! All three mechanisms can be disabled independently for the ablation
//! experiment (E9 in DESIGN.md).

use crate::candidate::{CandId, CandidateSet, StmtSet};
use crate::error::{IssueStage, StatementIssue};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use xia_fault::FaultInjector;
use xia_obs::{Counter, Telemetry};
use xia_optimizer::{maintenance, CostError, Optimizer};
use xia_storage::{Database, IndexStats};
use xia_workloads::Workload;

/// Counters exposed for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// Evaluate-mode optimizer invocations (one per statement costed).
    pub optimizer_calls: u64,
    /// Sub-configuration cache hits.
    pub cache_hits: u64,
    /// Sub-configuration cache misses (evaluations performed).
    pub cache_misses: u64,
    /// `benefit()` invocations.
    pub benefit_calls: u64,
}

/// A what-if evaluation budget. When either limit is reached, further
/// benefit evaluations fall back to cached sub-configuration values and,
/// failing that, heuristic costs (the degradation ladder: budget → cached
/// → heuristic). Zero means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WhatIfBudget {
    /// Maximum Evaluate-mode optimizer calls (0 = unlimited).
    pub max_calls: u64,
    /// Maximum wall-clock milliseconds spent evaluating (0 = unlimited).
    pub max_millis: u64,
}

impl WhatIfBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A call-count budget.
    pub fn calls(max_calls: u64) -> Self {
        Self {
            max_calls,
            max_millis: 0,
        }
    }

    fn exhausted(&self, calls: u64, elapsed: Duration) -> bool {
        (self.max_calls > 0 && calls >= self.max_calls)
            || (self.max_millis > 0 && elapsed.as_millis() as u64 >= self.max_millis)
    }
}

/// Evaluates candidate-configuration benefits through the optimizer.
pub struct BenefitEvaluator<'a> {
    db: &'a mut Database,
    workload: &'a Workload,
    set: &'a CandidateSet,
    /// Baseline (no-candidate) cost per statement.
    baseline: Vec<f64>,
    /// Derived index statistics per candidate (for maintenance costs).
    istats: HashMap<CandId, IndexStats>,
    /// Total (frequency-weighted) maintenance cost per candidate.
    mc_totals: HashMap<CandId, f64>,
    /// Memoized sub-configuration benefits (query side, before mc).
    cache: HashMap<Vec<CandId>, f64>,
    /// Ablation switch: restrict evaluation to affected statements.
    pub use_affected_sets: bool,
    /// Ablation switch: decompose configurations into sub-configurations.
    pub use_subconfigs: bool,
    /// Ablation switch: memoize sub-configuration evaluations.
    pub use_cache: bool,
    stats: EvalStats,
    /// Telemetry sink for what-if accounting (off unless attached).
    telemetry: Telemetry,
    /// Fault injector threaded into every optimizer the evaluator builds.
    faults: FaultInjector,
    /// What-if call/time budget; exhausted → heuristic fallbacks.
    budget: WhatIfBudget,
    /// When evaluation started (for the time budget).
    started: Instant,
    /// Per-statement liveness: quarantined statements are masked out of
    /// every evaluation loop.
    active: Vec<bool>,
    /// Diagnostics for quarantined statements.
    quarantined: Vec<StatementIssue>,
    /// Benefit evaluations answered heuristically (fault or budget).
    fallbacks: u64,
}

impl<'a> BenefitEvaluator<'a> {
    /// Creates an evaluator, computing per-statement baseline costs with
    /// no candidate indexes in place.
    pub fn new(db: &'a mut Database, workload: &'a Workload, set: &'a CandidateSet) -> Self {
        Self::with_faults(
            db,
            workload,
            set,
            &FaultInjector::off(),
            WhatIfBudget::unlimited(),
        )
    }

    /// Creates an evaluator configured from [`crate::advisor::AdvisorParams`]:
    /// telemetry, fault injector, and what-if budget are all in effect from
    /// baseline costing onwards.
    pub fn configured(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        params: &crate::advisor::AdvisorParams,
    ) -> Self {
        Self::build(
            db,
            workload,
            set,
            &params.faults,
            params.what_if_budget,
            &params.telemetry,
        )
    }

    /// Creates an evaluator with a fault injector and what-if budget in
    /// effect from baseline costing onwards. Statements whose collection
    /// is missing are quarantined here; statements whose costing fails
    /// (stats unavailable, injected optimizer fault) get a heuristic
    /// baseline and the run is marked degraded.
    pub fn with_faults(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        faults: &FaultInjector,
        budget: WhatIfBudget,
    ) -> Self {
        Self::build(db, workload, set, faults, budget, &Telemetry::off())
    }

    fn build(
        db: &'a mut Database,
        workload: &'a Workload,
        set: &'a CandidateSet,
        faults: &FaultInjector,
        budget: WhatIfBudget,
        telemetry: &Telemetry,
    ) -> Self {
        db.set_faults(faults);
        db.set_telemetry(telemetry);
        db.runstats_all();
        for name in db
            .collection_names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        {
            if let Some(cat) = db.catalog_mut(&name) {
                cat.drop_all_virtual();
            }
        }
        let mut ev = Self {
            db,
            workload,
            set,
            baseline: Vec::new(),
            istats: HashMap::new(),
            mc_totals: HashMap::new(),
            cache: HashMap::new(),
            use_affected_sets: true,
            use_subconfigs: true,
            use_cache: true,
            stats: EvalStats::default(),
            telemetry: telemetry.clone(),
            faults: faults.clone(),
            budget,
            started: Instant::now(),
            active: vec![true; workload.len()],
            quarantined: Vec::new(),
            fallbacks: 0,
        };
        ev.compute_baselines();
        ev
    }

    fn compute_baselines(&mut self) {
        self.baseline = vec![0.0; self.workload.len()];
        for si in 0..self.workload.len() {
            let entry = &self.workload.entries()[si];
            let coll = entry.statement.collection().to_string();
            if self.db.collection(&coll).is_none() {
                self.active[si] = false;
                self.telemetry.incr(Counter::StatementsQuarantined);
                self.quarantined.push(StatementIssue {
                    index: si,
                    text: entry.text.clone(),
                    stage: IssueStage::Cost,
                    detail: format!("unknown collection `{coll}`"),
                });
                continue;
            }
            self.baseline[si] = match self.try_statement_cost(si) {
                Ok(c) => c,
                Err(_) => {
                    // The statement is costable in principle (the data is
                    // there); fall back to a heuristic scan estimate so the
                    // run can continue degraded.
                    self.fallbacks += 1;
                    self.telemetry.incr(Counter::CostFallbacks);
                    self.heuristic_statement_cost(&coll)
                }
            };
        }
    }

    /// A crude scan-cost proxy used when the optimizer cannot answer:
    /// touch every node of the statement's collection once.
    fn heuristic_statement_cost(&self, coll: &str) -> f64 {
        self.db
            .collection(coll)
            .map(|c| c.total_nodes() as f64)
            .unwrap_or(0.0)
            .max(1.0)
    }

    /// Evaluation counters so far.
    pub fn eval_stats(&self) -> EvalStats {
        self.stats
    }

    /// Diagnostics for statements quarantined during baseline costing.
    pub fn quarantined(&self) -> &[StatementIssue] {
        &self.quarantined
    }

    /// Number of statements still participating in evaluation.
    pub fn active_statements(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Benefit evaluations answered heuristically so far (injected faults,
    /// unavailable statistics, or budget exhaustion).
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks
    }

    /// Whether any quarantine or fallback degraded this run.
    pub fn is_degraded(&self) -> bool {
        self.fallbacks > 0 || !self.quarantined.is_empty()
    }

    /// Attaches a telemetry sink: subsequent optimizer calls, cache
    /// activity, and virtual-index churn (via the database catalogs) count
    /// against it. Baseline costing in [`BenefitEvaluator::new`] happens
    /// before any sink can be attached and is deliberately uncounted.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.db.set_telemetry(telemetry);
    }

    /// The attached telemetry sink (disabled unless
    /// [`BenefitEvaluator::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Total baseline (no-index) workload cost.
    pub fn baseline_cost(&self) -> f64 {
        self.baseline
            .iter()
            .zip(self.workload.entries())
            .map(|(c, e)| c * e.freq)
            .sum()
    }

    /// The candidate set being evaluated.
    pub fn candidates(&self) -> &CandidateSet {
        self.set
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> &Workload {
        self.workload
    }

    fn try_statement_cost(&mut self, si: usize) -> Result<f64, CostError> {
        let stmt = &self.workload.entries()[si].statement;
        let coll = stmt.collection().to_string();
        let Some((collection, catalog, stats)) = self.db.parts(&coll) else {
            // The collection exists (checked at quarantine time), so a
            // missing view here means statistics were unavailable.
            return Err(CostError::StatsUnavailable(coll));
        };
        let mut optimizer = Optimizer::new(collection, stats, catalog);
        optimizer.set_telemetry(&self.telemetry);
        optimizer.set_faults(&self.faults);
        self.stats.optimizer_calls += 1;
        Ok(optimizer.try_optimize(stmt)?.total_cost)
    }

    /// Costs one statement with the degradation ladder applied: a budget
    /// check first (exhausted → no optimizer call), then the optimizer,
    /// then a heuristic. The heuristic indexed-cost estimate is half the
    /// statement's baseline — optimistic enough that candidates still rank
    /// by affected baseline mass when the optimizer is unavailable, so a
    /// degraded run still produces a non-empty recommendation.
    fn degraded_statement_cost(&mut self, si: usize) -> f64 {
        if self
            .budget
            .exhausted(self.stats.optimizer_calls, self.started.elapsed())
        {
            self.telemetry.incr(Counter::WhatIfBudgetExhausted);
            self.fallbacks += 1;
            self.telemetry.incr(Counter::CostFallbacks);
            return 0.5 * self.baseline[si];
        }
        match self.try_statement_cost(si) {
            Ok(c) => c,
            Err(_) => {
                self.fallbacks += 1;
                self.telemetry.incr(Counter::CostFallbacks);
                0.5 * self.baseline[si]
            }
        }
    }

    /// Installs exactly `config`'s members as virtual indexes (dropping all
    /// other virtual indexes everywhere).
    fn install_virtuals(&mut self, config: &[CandId]) {
        let names: Vec<String> = self
            .db
            .collection_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for name in &names {
            if let Some(cat) = self.db.catalog_mut(name) {
                cat.drop_all_virtual();
            }
        }
        for &id in config {
            let c = self.set.get(id);
            let (pattern, kind, coll) = (c.pattern.clone(), c.kind, c.collection.clone());
            if let Some((collection, catalog, stats)) = self.db.parts_mut(&coll) {
                catalog.create_virtual(collection, stats, &pattern, kind);
            }
        }
    }

    /// Benefit of a configuration per the paper's formula.
    pub fn benefit(&mut self, config: &[CandId]) -> f64 {
        self.stats.benefit_calls += 1;
        self.telemetry.incr(Counter::BenefitEvaluations);
        let _evaluate = self.telemetry.span("evaluate");
        if config.is_empty() {
            return 0.0;
        }
        let groups = if self.use_subconfigs {
            self.decompose(config)
        } else {
            vec![config.to_vec()]
        };
        let mut total = 0.0;
        for g in groups {
            total += self.eval_subconfig(g);
        }
        for &id in config {
            total -= self.mc_total(id);
        }
        total
    }

    /// Estimated workload cost under a configuration
    /// (`baseline − benefit`).
    pub fn workload_cost(&mut self, config: &[CandId]) -> f64 {
        self.baseline_cost() - self.benefit(config)
    }

    /// Estimated speedup: baseline cost over configured cost.
    pub fn speedup(&mut self, config: &[CandId]) -> f64 {
        let base = self.baseline_cost();
        let cost = self.workload_cost(config);
        if cost <= 0.0 {
            f64::INFINITY
        } else {
            base / cost
        }
    }

    /// Splits a configuration into sub-configurations of candidates with
    /// transitively overlapping affected sets.
    pub fn decompose(&self, config: &[CandId]) -> Vec<Vec<CandId>> {
        let n = config.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (self.set.get(config[i]), self.set.get(config[j]));
                if a.affected.overlaps(&b.affected) {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<CandId>> = HashMap::new();
        for (i, &cand) in config.iter().enumerate().take(n) {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(cand);
        }
        let mut out: Vec<Vec<CandId>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort();
        out
    }

    /// Evaluates one sub-configuration's query-side benefit
    /// `Σ freq·(old − new)` over its affected statements.
    fn eval_subconfig(&mut self, mut sub: Vec<CandId>) -> f64 {
        sub.sort_unstable();
        sub.dedup();
        if self.use_cache {
            if let Some(&v) = self.cache.get(&sub) {
                self.stats.cache_hits += 1;
                self.telemetry.incr(Counter::BenefitCacheHits);
                return v;
            }
            self.stats.cache_misses += 1;
            self.telemetry.incr(Counter::BenefitCacheMisses);
        }
        // Affected statements: union over members (or all statements when
        // the affected-set optimization is disabled).
        let stmts: Vec<usize> = if self.use_affected_sets {
            let mut u = StmtSet::new();
            for &id in &sub {
                u.union_with(&self.set.get(id).affected);
            }
            u.iter().collect()
        } else {
            (0..self.workload.len()).collect()
        };
        self.install_virtuals(&sub);
        let mut total = 0.0;
        let fallbacks_before = self.fallbacks;
        for si in stmts {
            if !self.active[si] {
                continue;
            }
            let new_cost = self.degraded_statement_cost(si);
            let freq = self.workload.entries()[si].freq;
            total += freq * (self.baseline[si] - new_cost);
        }
        self.install_virtuals(&[]);
        // Heuristic answers are not memoized: a later evaluation inside
        // budget (or past the fault) should get the real number.
        if self.use_cache && self.fallbacks == fallbacks_before {
            self.cache.insert(sub, total);
        }
        total
    }

    /// Which members of `config` are actually used in some statement's
    /// best plan when the whole configuration is installed — the paper's
    /// "compile all workload queries ... and eliminate indexes that are
    /// never used" check, used by greedy-with-heuristics as a final
    /// redundancy pass.
    pub fn used_candidates(&mut self, config: &[CandId]) -> Vec<CandId> {
        if config.is_empty() {
            return Vec::new();
        }
        self.install_virtuals(config);
        // Map (collection, IndexId) → CandId by replaying creation order:
        // install_virtuals creates one virtual per config member, in order.
        let mut by_key: HashMap<(String, String, xia_xpath::ValueKind), CandId> = HashMap::new();
        for &id in config {
            let c = self.set.get(id);
            by_key.insert((c.collection.clone(), c.pattern.to_string(), c.kind), id);
        }
        let stmts: Vec<usize> = if self.use_affected_sets {
            let mut u = StmtSet::new();
            for &id in config {
                u.union_with(&self.set.get(id).affected);
            }
            u.iter().collect()
        } else {
            (0..self.workload.len()).collect()
        };
        let mut used: Vec<CandId> = Vec::new();
        for si in stmts {
            if !self.active[si] {
                continue;
            }
            let stmt = &self.workload.entries()[si].statement;
            let coll = stmt.collection().to_string();
            let Some((collection, catalog, stats)) = self.db.parts(&coll) else {
                continue;
            };
            let mut optimizer = Optimizer::new(collection, stats, catalog);
            optimizer.set_telemetry(&self.telemetry);
            self.stats.optimizer_calls += 1;
            let plan = optimizer.optimize(stmt);
            for ix in plan.used_indexes() {
                if let Some(def) = catalog.get(ix) {
                    let key = (coll.clone(), def.pattern.to_string(), def.kind);
                    if let Some(&cid) = by_key.get(&key) {
                        if !used.contains(&cid) {
                            used.push(cid);
                        }
                    }
                }
            }
        }
        self.install_virtuals(&[]);
        used.sort_unstable();
        used
    }

    fn derived_istats(&mut self, id: CandId) -> IndexStats {
        if let Some(s) = self.istats.get(&id) {
            return s.clone();
        }
        let c = self.set.get(id);
        let (coll, pattern, kind) = (c.collection.clone(), c.pattern.clone(), c.kind);
        let stats = match self.db.parts(&coll) {
            Some((collection, _, stats)) => {
                self.telemetry.incr(Counter::StatsDerivations);
                xia_storage::Catalog::derive_stats(collection, stats, &pattern, kind).1
            }
            None => IndexStats::default(),
        };
        self.istats.insert(id, stats.clone());
        stats
    }

    /// Total frequency-weighted maintenance cost of one candidate over the
    /// workload's modification statements.
    pub fn mc_total(&mut self, id: CandId) -> f64 {
        if let Some(&v) = self.mc_totals.get(&id) {
            return v;
        }
        let istats = self.derived_istats(id);
        let c = self.set.get(id);
        let (coll, pattern, kind) = (c.collection.clone(), c.pattern.clone(), c.kind);
        let mut total = 0.0;
        for entry in self.workload.entries() {
            if !entry.statement.is_modification() || entry.statement.collection() != coll {
                continue;
            }
            let Some((collection, catalog, stats)) = self.db.parts(&coll) else {
                continue;
            };
            let mut optimizer = Optimizer::new(collection, stats, catalog);
            optimizer.set_telemetry(&self.telemetry);
            let mc = maintenance::maintenance_cost(
                &pattern,
                kind,
                &istats,
                &entry.statement,
                &optimizer,
                stats,
                optimizer.cost_model(),
            );
            total += entry.freq * mc;
        }
        self.mc_totals.insert(id, total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_candidates, size_candidates};
    use crate::generalize::generalize_set;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn setup() -> (Database, Workload) {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        (db, w)
    }

    fn candidates(db: &mut Database, w: &Workload) -> CandidateSet {
        let mut set = enumerate_candidates(db, w);
        generalize_set(&mut set);
        size_candidates(db, &mut set);
        set
    }

    #[test]
    fn empty_config_has_zero_benefit() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        assert_eq!(ev.benefit(&[]), 0.0);
        assert!(ev.baseline_cost() > 0.0);
    }

    #[test]
    fn single_selective_index_has_positive_benefit() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let sym = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .expect("symbol candidate enumerated");
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let b = ev.benefit(&[sym]);
        assert!(b > 0.0, "benefit = {b}");
        assert!(ev.speedup(&[sym]) > 1.0);
    }

    #[test]
    fn benefit_is_monotone_enough_for_all_vs_one() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let one = vec![all[0]];
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let b_all = ev.benefit(&all);
        let b_one = ev.benefit(&one);
        assert!(b_all >= b_one, "all={b_all} one={b_one}");
    }

    #[test]
    fn decompose_groups_by_affected_overlap() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let all = set.basic_ids();
        let groups = ev.decompose(&all);
        // There is more than one group (queries over three collections),
        // and groups partition the config.
        assert!(groups.len() > 1);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, all.len());
        // Candidates from different collections never share a group.
        for g in &groups {
            let coll = &set.get(g[0]).collection;
            assert!(g.iter().all(|&id| &set.get(id).collection == coll));
        }
        let _ = ev.benefit(&all);
    }

    #[test]
    fn cache_reduces_optimizer_calls() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let calls0 = ev.eval_stats().optimizer_calls;
        let b1 = ev.benefit(&all);
        let calls1 = ev.eval_stats().optimizer_calls;
        let b2 = ev.benefit(&all);
        let calls2 = ev.eval_stats().optimizer_calls;
        assert_eq!(b1, b2);
        assert!(calls1 > calls0);
        assert_eq!(calls2, calls1, "second evaluation must be fully cached");
        assert!(ev.eval_stats().cache_hits > 0);
    }

    #[test]
    fn affected_sets_limit_work() {
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let one = vec![set.basic_ids()[0]];
        // With affected sets on.
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let base_calls = ev.eval_stats().optimizer_calls;
        ev.benefit(&one);
        let with = ev.eval_stats().optimizer_calls - base_calls;
        // With affected sets off (must re-cost every statement).
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.use_affected_sets = false;
        ev2.use_cache = false;
        let base_calls2 = ev2.eval_stats().optimizer_calls;
        ev2.benefit(&one);
        let without = ev2.eval_stats().optimizer_calls - base_calls2;
        assert!(with < without, "with={with} without={without}");
    }

    #[test]
    fn maintenance_cost_reduces_benefit_for_update_workloads() {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let mut texts = tpox::queries(&cfg);
        let n_queries = texts.len();
        texts.extend(tpox::update_mix(&cfg));
        let w = Workload::from_texts(texts.iter().map(|s| s.as_str())).unwrap();
        let set = candidates(&mut db, &w);
        let sym = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .unwrap();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let mc = ev.mc_total(sym);
        assert!(
            mc > 0.0,
            "insert of a Security must charge the symbol index"
        );
        let _ = n_queries;
    }

    #[test]
    fn subconfig_results_compose() {
        // benefit(config) must equal the sum over its decomposition when
        // evaluated without subconfig decomposition (no cross-group
        // interaction by construction).
        let (mut db, w) = setup();
        let set = candidates(&mut db, &w);
        let all = set.basic_ids();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let with_sub = ev.benefit(&all);
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.use_subconfigs = false;
        let without_sub = ev2.benefit(&all);
        let rel = (with_sub - without_sub).abs() / without_sub.abs().max(1.0);
        assert!(rel < 1e-9, "with={with_sub} without={without_sub}");
    }
}
