//! The advisor facade: end-to-end index recommendation.

use crate::benefit::{BenefitEvaluator, EvalStats, WhatIfBudget};
use crate::candidate::{CandId, CandOrigin, CandidateSet};
use crate::enumerate::{enumerate_candidates_traced, size_candidates_traced};
use crate::error::{StatementIssue, XiaError};
use crate::generalize::{generalize_set_fast, generalize_set_naive};
use crate::runctl::{RunController, StopReason};
use crate::search;
use std::time::{Duration, Instant};
use xia_fault::FaultInjector;
use xia_obs::{Counter, Event, EventJournal, Telemetry};
use xia_storage::Database;
use xia_workloads::Workload;
use xia_xpath::ValueKind;

/// Which configuration-search algorithm to run (paper Section VII-B
/// evaluates the first five; `cophy` is the post-paper scale-out for
/// huge workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchAlgorithm {
    /// Plain greedy by benefit density (ignores interaction).
    Greedy,
    /// Greedy with the paper's heuristics (Section VI-A).
    GreedyHeuristics,
    /// Top-down over the generalization DAG, standalone benefits.
    TopDownLite,
    /// Top-down with interaction-aware benefit evaluation.
    TopDownFull,
    /// Dynamic-programming knapsack (optimal modulo interaction).
    Dp,
    /// CoPhy-style: workload compression + LP-relaxation search with a
    /// certified quality bound (built for 100k+-statement workloads).
    Cophy,
}

impl SearchAlgorithm {
    /// All algorithms: the paper's five in presentation order, then
    /// `cophy`.
    pub const ALL: [SearchAlgorithm; 6] = [
        SearchAlgorithm::Greedy,
        SearchAlgorithm::GreedyHeuristics,
        SearchAlgorithm::TopDownLite,
        SearchAlgorithm::TopDownFull,
        SearchAlgorithm::Dp,
        SearchAlgorithm::Cophy,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Greedy => "greedy",
            SearchAlgorithm::GreedyHeuristics => "heuristics",
            SearchAlgorithm::TopDownLite => "topdown-lite",
            SearchAlgorithm::TopDownFull => "topdown-full",
            SearchAlgorithm::Dp => "dp",
            SearchAlgorithm::Cophy => "cophy",
        }
    }
}

/// Tunable advisor parameters.
#[derive(Debug, Clone)]
pub struct AdvisorParams {
    /// β of the greedy-heuristics size condition
    /// (`Size(x_g) ≤ (1+β)·ΣSize(x_i)`); the paper found 10% to work well.
    pub beta: f64,
    /// Whether to run the generalization step. Disabling restricts the
    /// space to basic candidates (used in ablations).
    pub generalize: bool,
    /// Telemetry sink threaded through the whole pipeline: phase timers,
    /// what-if call accounting, candidate counters. Enabled by default
    /// (the handle is near-zero-cost); swap in [`Telemetry::off`] to
    /// disable collection entirely.
    pub telemetry: Telemetry,
    /// Fault injector threaded through storage and the optimizer
    /// (disabled by default; see the `xia-fault` crate).
    pub faults: FaultInjector,
    /// What-if call/time budget; when exhausted, benefit evaluation falls
    /// back to cached and then heuristic costs (unlimited by default).
    pub what_if_budget: WhatIfBudget,
    /// Strict mode: fail with [`XiaError::StrictDegradation`] instead of
    /// returning a degraded recommendation.
    pub strict: bool,
    /// What-if worker threads for benefit evaluation (`--jobs`). `0` means
    /// auto-detect (one per available core); recommendations are identical
    /// for every value — only wall-clock time changes. Defaults to the
    /// `XIA_JOBS` environment variable, or 1.
    pub jobs: usize,
    /// Statement-relevance pruning (`--no-prune` turns it off): serve
    /// per-statement what-if costings whose candidate projection was
    /// already costed from the statement cache instead of re-running the
    /// optimizer. Recommendations are byte-identical either way — off
    /// exists for the ablation. On by default.
    pub prune: bool,
    /// Interning/semi-naive fast path (`--no-fastpath` turns it off): run
    /// generalization as a bucketed, memoized semi-naive fixpoint and
    /// serve containment checks through the shared cover cache with the
    /// name-mask fast reject. Candidate sets, generalization DAGs, and
    /// recommendations are byte-identical either way — off exists for the
    /// A/B parity check and the E12 ablation. On by default.
    pub fastpath: bool,
    /// Decision-provenance journal (`--journal`, `explain --why`). Unlike
    /// telemetry, journaling is *opt-in*: the default handle is disabled,
    /// so event payloads are never even constructed. All emission sites
    /// run on the coordinator thread in deterministic order, so the JSONL
    /// export is byte-identical for every `jobs` value.
    pub journal: EventJournal,
    /// Workload compression (`--no-compress` turns it off): before a
    /// [`SearchAlgorithm::Cophy`] run, cluster the workload into weighted
    /// cost-identity templates and advise over the representatives (see
    /// [`crate::compress`]). Lossless for advising — the recommendation
    /// matches the uncompressed run — and the whole point of `cophy` at
    /// scale, so on by default. Other algorithms ignore it (they exist to
    /// reproduce the paper's per-statement behavior). Only
    /// [`Advisor::recommend`] compresses; `recommend_prepared` callers
    /// own their workload/candidate pairing.
    pub compress: bool,
    /// Run-lifecycle controller (`--deadline-ms`, `--checkpoint`,
    /// `--resume`, `--mem-budget`): wall-clock deadline, cooperative
    /// cancellation, crash-safe checkpointing, and the resource governor.
    /// Disabled by default; a stopped run returns a partial
    /// recommendation ([`Recommendation::complete`] is `false`) instead
    /// of an error.
    pub ctl: RunController,
}

impl AdvisorParams {
    /// Resolves [`AdvisorParams::jobs`] to a concrete worker count
    /// (`0` → available parallelism).
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    fn default_jobs() -> usize {
        std::env::var("XIA_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    }
}

impl Default for AdvisorParams {
    fn default() -> Self {
        Self {
            beta: 0.10,
            generalize: true,
            telemetry: Telemetry::new(),
            faults: FaultInjector::off(),
            what_if_budget: WhatIfBudget::unlimited(),
            strict: false,
            jobs: Self::default_jobs(),
            prune: true,
            fastpath: true,
            journal: EventJournal::off(),
            compress: true,
            ctl: RunController::off(),
        }
    }
}

/// One recommended index.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendedIndex {
    /// Collection (XML column) to create the index on.
    pub collection: String,
    /// Index pattern (linear XPath).
    pub pattern: String,
    /// Key type.
    pub kind: ValueKind,
    /// Estimated size in bytes.
    pub size: u64,
    /// Whether the pattern came from generalization.
    pub general: bool,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Chosen candidate ids (into the candidate set used for the run).
    pub config: Vec<CandId>,
    /// Human-consumable index list.
    pub indexes: Vec<RecommendedIndex>,
    /// Estimated benefit of the configuration (paper formula).
    pub est_benefit: f64,
    /// Estimated workload cost with no indexes.
    pub baseline_cost: f64,
    /// Estimated workload cost under the configuration.
    pub workload_cost: f64,
    /// `baseline_cost / workload_cost`.
    pub speedup: f64,
    /// Total estimated size of the configuration.
    pub total_size: u64,
    /// Number of generalized indexes recommended (paper Table IV "G").
    pub general_count: usize,
    /// Number of specific (basic) indexes recommended (Table IV "S").
    pub specific_count: usize,
    /// Wall-clock advisor time (paper Fig. 3).
    pub advisor_time: Duration,
    /// Evaluate-mode optimizer calls made during the search.
    pub eval_stats: EvalStats,
    /// Basic candidates enumerated (paper Table III).
    pub candidates_basic: usize,
    /// Total candidates after generalization (Table III).
    pub candidates_total: usize,
    /// Statements quarantined during evaluation (missing collection,
    /// parse-stage issues appended by the caller). The recommendation
    /// covers the remaining statements.
    pub quarantined: Vec<StatementIssue>,
    /// Whether any fallback or quarantine degraded this run.
    pub degraded: bool,
    /// Benefit evaluations answered heuristically (injected faults,
    /// unavailable statistics, or what-if budget exhaustion).
    pub cost_fallbacks: u64,
    /// Whether the run ran to completion. `false` means the run
    /// controller stopped the search early (deadline or cancellation)
    /// and the configuration is the best one found so far.
    pub complete: bool,
    /// Why the run stopped early, when [`Recommendation::complete`] is
    /// `false`.
    pub stop: Option<StopReason>,
    /// Lifecycle warnings to surface to the user (abandoned checkpoint
    /// writes), in emission order.
    pub warnings: Vec<String>,
}

/// A recommendation produced by a run the controller stopped early:
/// best-so-far configuration plus the reason the search unwound.
#[derive(Debug, Clone)]
pub struct PartialRecommendation<'a> {
    /// The best-so-far recommendation (fully priced and sized).
    pub recommendation: &'a Recommendation,
    /// Why the run stopped.
    pub reason: StopReason,
}

impl Recommendation {
    /// The partial-result view, when the run was stopped early.
    pub fn partial(&self) -> Option<PartialRecommendation<'_>> {
        self.stop.map(|reason| PartialRecommendation {
            recommendation: self,
            reason,
        })
    }

    /// Renders the recommendation as a DB2-pureXML-style DDL script.
    ///
    /// ```text
    /// CREATE INDEX idx_sdoc_1 ON "SDOC" (XMLCOL)
    ///   GENERATE KEY USING XMLPATTERN '/Security/Symbol' AS SQL VARCHAR(64);
    /// ```
    pub fn ddl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counters: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for ix in &self.indexes {
            let n = counters.entry(ix.collection.as_str()).or_insert(0);
            *n += 1;
            let sql_type = match ix.kind {
                ValueKind::Str => "SQL VARCHAR(64)",
                ValueKind::Num => "SQL DOUBLE",
            };
            let _ = writeln!(
                out,
                "CREATE INDEX idx_{}_{} ON \"{}\" (XMLCOL)\n  GENERATE KEY USING XMLPATTERN '{}' AS {};",
                ix.collection.to_lowercase(),
                n,
                ix.collection,
                ix.pattern,
                sql_type
            );
        }
        out
    }
}

/// The XML Index Advisor.
pub struct Advisor;

impl Advisor {
    /// Enumerates, generalizes, and sizes the candidate set for a workload
    /// (steps 1–2 of the pipeline). Exposed separately so experiments can
    /// share one candidate set across searches.
    pub fn prepare(db: &mut Database, workload: &Workload, params: &AdvisorParams) -> CandidateSet {
        let t = &params.telemetry;
        // Thread the fault injector through storage before any statistics
        // work, so stats-unavailable faults fire during enumeration too.
        db.set_faults(&params.faults);
        db.set_telemetry(t);
        let mut set = {
            let _enumerate = t.span("enumerate");
            enumerate_candidates_traced(db, workload, t)
        };
        t.add(Counter::CandidatesEnumerated, set.len() as u64);
        if params.journal.is_enabled() {
            for c in set.iter() {
                params.journal.emit(|| Event::CandidateGenerated {
                    collection: c.collection.clone(),
                    pattern: c.pattern.to_string(),
                    kind: c.kind.to_string(),
                    origin: "basic".to_string(),
                });
            }
        }
        if params.generalize {
            let created = {
                let _generalize = t.span("generalize");
                if params.fastpath {
                    generalize_set_fast(&mut set, t, &params.journal)
                } else {
                    generalize_set_naive(&mut set, t, &params.journal)
                }
            };
            t.add(Counter::CandidatesGeneralized, created.len() as u64);
        }
        {
            let _size = t.span("size");
            size_candidates_traced(db, &mut set, t);
        }
        set
    }

    /// The *All Index* configuration: one index per basic candidate — the
    /// paper's upper-bound configuration for query-only workloads.
    pub fn all_index_config(set: &CandidateSet) -> Vec<CandId> {
        set.basic_ids()
    }

    /// Runs the full pipeline and recommends a configuration within
    /// `budget` bytes using `algorithm`.
    ///
    /// Degrades gracefully: statements that cannot be costed are
    /// quarantined (reported in [`Recommendation::quarantined`]) and
    /// optimizer failures fall back to heuristic costs — an `Err` means
    /// no useful recommendation exists at all (empty workload, everything
    /// quarantined, or strict mode refusing degradation).
    pub fn recommend(
        db: &mut Database,
        workload: &Workload,
        budget: u64,
        algorithm: SearchAlgorithm,
        params: &AdvisorParams,
    ) -> Result<Recommendation, XiaError> {
        if workload.is_empty() {
            return Err(XiaError::EmptyWorkload);
        }
        if algorithm == SearchAlgorithm::Cophy && params.compress {
            let compressed = {
                let _compress = params.telemetry.span("compress");
                crate::compress::compress_workload(workload, &params.telemetry, &params.journal)
            };
            return Self::recommend_inner(db, &compressed.workload, budget, algorithm, params);
        }
        Self::recommend_inner(db, workload, budget, algorithm, params)
    }

    fn recommend_inner(
        db: &mut Database,
        workload: &Workload,
        budget: u64,
        algorithm: SearchAlgorithm,
        params: &AdvisorParams,
    ) -> Result<Recommendation, XiaError> {
        let start = Instant::now();
        let _advise = params.telemetry.span("advise");
        let set = Self::prepare(db, workload, params);
        let basic = set.basic_ids().len();
        let total = set.len();
        let mut ev = BenefitEvaluator::configured(db, workload, &set, params);
        Self::check_viability(&ev, params)?;
        let config = {
            let _search = params.telemetry.span("search");
            Self::search_with(&mut ev, &set, budget, algorithm, params)
        };
        Self::finish_checked(&set, &mut ev, config, basic, total, start, params)
    }

    /// Runs only the search step over a prepared candidate set (used by
    /// the experiment harness to share enumeration/generalization work).
    pub fn recommend_prepared(
        db: &mut Database,
        workload: &Workload,
        set: &CandidateSet,
        budget: u64,
        algorithm: SearchAlgorithm,
        params: &AdvisorParams,
    ) -> Result<Recommendation, XiaError> {
        if workload.is_empty() {
            return Err(XiaError::EmptyWorkload);
        }
        let start = Instant::now();
        let _advise = params.telemetry.span("advise");
        let basic = set.basic_ids().len();
        let total = set.len();
        let mut ev = BenefitEvaluator::configured(db, workload, set, params);
        Self::check_viability(&ev, params)?;
        let config = {
            let _search = params.telemetry.span("search");
            Self::search_with(&mut ev, set, budget, algorithm, params)
        };
        Self::finish_checked(set, &mut ev, config, basic, total, start, params)
    }

    /// Rejects runs where nothing survived quarantine.
    fn check_viability(ev: &BenefitEvaluator<'_>, _params: &AdvisorParams) -> Result<(), XiaError> {
        if ev.active_statements() == 0 {
            return Err(XiaError::AllStatementsQuarantined {
                total: ev.quarantined().len(),
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_checked(
        set: &CandidateSet,
        ev: &mut BenefitEvaluator<'_>,
        config: Vec<CandId>,
        candidates_basic: usize,
        candidates_total: usize,
        start: Instant,
        params: &AdvisorParams,
    ) -> Result<Recommendation, XiaError> {
        let rec = Self::finish(set, ev, config, candidates_basic, candidates_total, start);
        if params.strict && rec.degraded {
            return Err(XiaError::StrictDegradation {
                quarantined: rec.quarantined.len(),
                fallbacks: rec.cost_fallbacks,
            });
        }
        Ok(rec)
    }

    fn search_with(
        ev: &mut BenefitEvaluator<'_>,
        set: &CandidateSet,
        budget: u64,
        algorithm: SearchAlgorithm,
        params: &AdvisorParams,
    ) -> Vec<CandId> {
        // Every algorithm records a span named after itself, nested under
        // the generic "search" phase, so `--trace` latency histograms
        // carry one search-loop row per `--algorithm` value.
        let _algo = params.telemetry.span(algorithm.name());
        let all: Vec<CandId> = set.ids().collect();
        match algorithm {
            SearchAlgorithm::Greedy => search::greedy(ev, &all, budget),
            SearchAlgorithm::GreedyHeuristics => {
                search::greedy_heuristics(ev, &all, budget, params.beta)
            }
            SearchAlgorithm::TopDownLite => search::top_down(ev, &all, budget, false),
            SearchAlgorithm::TopDownFull => search::top_down(ev, &all, budget, true),
            SearchAlgorithm::Dp => search::dp_knapsack(ev, &all, budget),
            SearchAlgorithm::Cophy => search::cophy(ev, &all, budget),
        }
    }

    fn finish(
        set: &CandidateSet,
        ev: &mut BenefitEvaluator<'_>,
        config: Vec<CandId>,
        candidates_basic: usize,
        candidates_total: usize,
        start: Instant,
    ) -> Recommendation {
        ev.telemetry()
            .add(Counter::CandidatesAdmitted, config.len() as u64);
        let cover = ev.cover_cache().stats();
        ev.telemetry().add(Counter::ContainCacheHits, cover.hits);
        ev.telemetry()
            .add(Counter::ContainFastRejects, cover.fast_rejects);
        let est_benefit = ev.benefit(&config);
        let baseline_cost = ev.baseline_cost();
        let workload_cost = ev.workload_cost(&config);
        let speedup = if workload_cost <= 0.0 {
            f64::INFINITY
        } else {
            baseline_cost / workload_cost
        };
        let indexes: Vec<RecommendedIndex> = config
            .iter()
            .map(|&id| {
                let c = set.get(id);
                RecommendedIndex {
                    collection: c.collection.clone(),
                    pattern: c.pattern.to_string(),
                    kind: c.kind,
                    size: c.size,
                    general: c.origin == CandOrigin::Generalized,
                }
            })
            .collect();
        let general_count = indexes.iter().filter(|i| i.general).count();
        let specific_count = indexes.len() - general_count;
        let total_size = set.config_size(&config);
        // The authoritative admission record: every index in the final
        // configuration gets a KEPT decision with the configuration-level
        // benefit, whatever the search algorithm recorded along the way.
        for ix in &indexes {
            ev.journal().emit(|| Event::KnapsackDecision {
                pattern: ix.pattern.clone(),
                kept: true,
                benefit: est_benefit,
                size: ix.size,
            });
        }
        // A stopped run records why (coordinator-side, after the partial
        // configuration was priced) and flushes a final checkpoint so
        // `--resume` sees every costing that completed.
        let stop = ev.ctl().stopped();
        if let Some(reason) = stop {
            ev.journal().emit(|| Event::RunStopped {
                reason: reason.name().to_string(),
            });
            ev.final_checkpoint();
        }
        Recommendation {
            config,
            indexes,
            est_benefit,
            baseline_cost,
            workload_cost,
            speedup,
            total_size,
            general_count,
            specific_count,
            advisor_time: start.elapsed(),
            eval_stats: ev.eval_stats(),
            candidates_basic,
            candidates_total,
            quarantined: ev.quarantined().to_vec(),
            degraded: ev.is_degraded(),
            cost_fallbacks: ev.fallback_count(),
            complete: stop.is_none(),
            stop,
            warnings: ev.warnings().to_vec(),
        }
    }

    /// What-if analysis: evaluates a *user-specified* index configuration
    /// (collection, pattern, kind triples) against a workload, without
    /// creating any physical index — the advisor-as-a-library equivalent
    /// of `db2advis -i`. Patterns that duplicate enumerated candidates are
    /// merged with them; new patterns become ad-hoc candidates with
    /// affected sets computed by coverage against the basic candidates.
    pub fn what_if(
        db: &mut Database,
        workload: &Workload,
        indexes: &[(String, xia_xpath::LinearPath, ValueKind)],
        params: &AdvisorParams,
    ) -> Result<Recommendation, XiaError> {
        if workload.is_empty() {
            return Err(XiaError::EmptyWorkload);
        }
        let start = Instant::now();
        let _advise = params.telemetry.span("advise");
        let mut set = Self::prepare(db, workload, params);
        let mut config = Vec::new();
        let basics = set.basic_ids();
        for (coll, pattern, kind) in indexes {
            let id = set.insert(coll, pattern.clone(), *kind, CandOrigin::Generalized);
            // Affected set by coverage over the basic candidates.
            let mut affected = set.get(id).affected.clone();
            for &b in &basics {
                let cb = set.get(b);
                if &cb.collection == coll
                    && cb.kind == *kind
                    && xia_xpath::contain::covers(pattern, &cb.pattern)
                {
                    let cb_affected = cb.affected.clone();
                    affected.union_with(&cb_affected);
                }
            }
            set.get_mut(id).affected = affected;
            if !config.contains(&id) {
                config.push(id);
            }
        }
        size_candidates_traced(db, &mut set, &params.telemetry);
        let basic = set.basic_ids().len();
        let total = set.len();
        let mut ev = BenefitEvaluator::configured(db, workload, &set, params);
        Self::check_viability(&ev, params)?;
        Self::finish_checked(&set, &mut ev, config, basic, total, start, params)
    }

    /// Materializes a recommendation: builds the recommended indexes as
    /// physical indexes in the database's catalogs. Returns the number of
    /// indexes created. (Used for actual-speedup measurements, Fig. 5.)
    pub fn materialize(db: &mut Database, set: &CandidateSet, config: &[CandId]) -> usize {
        let mut created = 0;
        for &id in config {
            let c = set.get(id);
            let (coll, pattern, kind) = (c.collection.clone(), c.pattern.clone(), c.kind);
            if let Some((collection, catalog, _)) = db.parts_mut(&coll) {
                catalog.create_physical(collection, &pattern, kind);
                created += 1;
            }
        }
        created
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_workloads::tpox::{self, TpoxConfig};

    fn setup() -> (Database, Workload) {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        (db, w)
    }

    #[test]
    fn all_algorithms_fit_the_budget_and_speed_up() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        let all_size = set.config_size(&Advisor::all_index_config(&set));
        let budget = all_size; // generous budget
        for algo in SearchAlgorithm::ALL {
            let rec =
                Advisor::recommend_prepared(&mut db, &w, &set, budget, algo, &params).unwrap();
            assert!(
                rec.total_size <= budget,
                "{}: size {} > budget {budget}",
                algo.name(),
                rec.total_size
            );
            assert!(
                rec.speedup > 1.0,
                "{}: speedup {} not > 1",
                algo.name(),
                rec.speedup
            );
            assert!(!rec.config.is_empty(), "{}: empty config", algo.name());
        }
    }

    #[test]
    fn tight_budget_yields_smaller_configs() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        let all_size = set.config_size(&Advisor::all_index_config(&set));
        let big = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            all_size,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        let small = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            all_size / 8,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        assert!(small.total_size <= all_size / 8);
        assert!(small.config.len() <= big.config.len());
        assert!(small.speedup <= big.speedup * 1.01);
    }

    #[test]
    fn top_down_recommends_more_general_indexes_than_heuristics() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        // Large budget: top-down keeps generals, heuristics sticks to
        // specifics (paper Table IV).
        let budget = set.config_size(&set.ids().collect::<Vec<_>>());
        let td = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            budget,
            SearchAlgorithm::TopDownLite,
            &params,
        )
        .unwrap();
        let gh = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        assert!(
            td.general_count >= gh.general_count,
            "topdown G={} heuristics G={}",
            td.general_count,
            gh.general_count
        );
    }

    #[test]
    fn recommendation_reports_candidate_counts() {
        let (mut db, w) = setup();
        let rec = Advisor::recommend(
            &mut db,
            &w,
            u64::MAX / 2,
            SearchAlgorithm::Greedy,
            &AdvisorParams::default(),
        )
        .unwrap();
        assert!(rec.candidates_basic > 0);
        assert!(rec.candidates_total >= rec.candidates_basic);
        assert!(rec.eval_stats.optimizer_calls > 0);
        assert!(rec.advisor_time.as_nanos() > 0);
    }

    #[test]
    fn zero_budget_recommends_nothing() {
        let (mut db, w) = setup();
        for algo in SearchAlgorithm::ALL {
            let rec = Advisor::recommend(&mut db, &w, 0, algo, &AdvisorParams::default()).unwrap();
            assert!(rec.config.is_empty(), "{}: {:?}", algo.name(), rec.indexes);
            assert_eq!(rec.total_size, 0);
        }
    }

    #[test]
    fn materialize_creates_physical_indexes() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        let rec = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            u64::MAX / 2,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        let n = Advisor::materialize(&mut db, &set, &rec.config);
        assert_eq!(n, rec.config.len());
        let total_phys: usize = db
            .collection_names()
            .iter()
            .map(|c| {
                db.catalog(c)
                    .unwrap()
                    .iter()
                    .filter(|d| !d.is_virtual())
                    .count()
            })
            .sum();
        assert_eq!(total_phys, n);
    }

    #[test]
    fn what_if_prices_user_configurations() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        // A config the user proposes by hand: one good index, one useless.
        let config = vec![
            (
                "SDOC".to_string(),
                xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                ValueKind::Str,
            ),
            (
                "SDOC".to_string(),
                xia_xpath::parse_linear_path("/Security/NoSuchThing").unwrap(),
                ValueKind::Str,
            ),
        ];
        let rec = Advisor::what_if(&mut db, &w, &config, &params).unwrap();
        assert_eq!(rec.config.len(), 2);
        assert!(rec.speedup > 1.0, "symbol index must pay off");
        // The useless index contributes size but no benefit.
        assert!(rec
            .indexes
            .iter()
            .any(|i| i.pattern == "/Security/NoSuchThing"));
    }

    #[test]
    fn what_if_general_pattern_covers_multiple_queries() {
        let (mut db, w) = setup();
        let params = AdvisorParams::default();
        let config = vec![(
            "SDOC".to_string(),
            xia_xpath::parse_linear_path("/Security//*").unwrap(),
            ValueKind::Str,
        )];
        let rec = Advisor::what_if(&mut db, &w, &config, &params).unwrap();
        assert!(rec.speedup > 1.0);
    }

    #[test]
    fn disabling_generalization_restricts_candidates() {
        let (mut db, w) = setup();
        let params = AdvisorParams {
            generalize: false,
            ..AdvisorParams::default()
        };
        let set = Advisor::prepare(&mut db, &w, &params);
        assert_eq!(set.len(), set.basic_ids().len());
    }
}
