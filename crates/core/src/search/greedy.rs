//! Greedy knapsack searches: plain, and with the paper's heuristics
//! (Section VI-A).

use super::{by_density, standalone_benefits};
use crate::benefit::BenefitEvaluator;
use crate::candidate::CandId;
use std::collections::HashSet;
use xia_obs::{Event, PruneReason};

/// Plain greedy search, as in relational index advisors: rank candidates
/// by standalone benefit density and take them in order while they fit.
/// Ignores index interaction — the paper shows this wastes budget on
/// redundant indexes (its Fig. 2 greedy line).
pub fn greedy(ev: &mut BenefitEvaluator<'_>, candidates: &[CandId], budget: u64) -> Vec<CandId> {
    let telemetry = ev.telemetry().clone();
    let journal = ev.journal().clone();
    let ctl = ev.ctl().clone();
    let benefits = standalone_benefits(ev, candidates);
    let order = by_density(ev, &benefits, candidates);
    let mut chosen = Vec::new();
    let mut used = 0u64;
    for id in order {
        // Cooperative stop: unwind with the best configuration so far.
        if ctl.poll().is_some() {
            break;
        }
        telemetry.incr(xia_obs::Counter::GreedyIterations);
        if benefits[&id] <= 0.0 {
            continue;
        }
        let size = ev.candidates().get(id).size;
        // checked_add: a corrupt size from a lenient load must not wrap
        // the accumulator and admit an oversized index.
        let kept = if let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) {
            chosen.push(id);
            used = next_used;
            true
        } else {
            false
        };
        journal.emit(|| Event::KnapsackDecision {
            pattern: ev.candidates().get(id).pattern.to_string(),
            kept,
            benefit: benefits[&id],
            size,
        });
    }
    chosen
}

/// Greedy search with the paper's heuristics:
///
/// * the benefit of the *entire* configuration decides admission (index
///   interaction respected);
/// * a bitmap of covered workload patterns blocks general indexes that
///   only replicate coverage already chosen;
/// * a general index `x_g` generalizing basics `x_1..x_n` is admitted only
///   if `IB(x_g) ≥ IB(x_1..x_n)` and
///   `Size(x_g) ≤ (1+β)·Σ Size(x_i)` (β defaults to 10%).
pub fn greedy_heuristics(
    ev: &mut BenefitEvaluator<'_>,
    candidates: &[CandId],
    budget: u64,
    beta: f64,
) -> Vec<CandId> {
    let telemetry = ev.telemetry().clone();
    let journal = ev.journal().clone();
    let ctl = ev.ctl().clone();
    let benefits = standalone_benefits(ev, candidates);
    let order = by_density(ev, &benefits, candidates);

    let mut chosen: Vec<CandId> = Vec::new();
    let mut chosen_benefit = 0.0f64;
    let mut used = 0u64;
    // Bitmap of basic candidates whose pattern is covered by the selection.
    let mut covered: HashSet<CandId> = HashSet::new();
    let basics = ev.candidates().basic_ids();

    for id in order {
        // Cooperative stop: unwind with the best configuration so far
        // (the redundancy pass below is skipped too).
        if ctl.poll().is_some() {
            break;
        }
        telemetry.incr(xia_obs::Counter::GreedyIterations);
        if benefits[&id] <= 0.0 {
            continue;
        }
        let size = ev.candidates().get(id).size;
        // checked_add against u64 wraparound from corrupt candidate sizes.
        let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) else {
            continue;
        };
        let is_general = {
            let c = ev.candidates().get(id);
            c.origin == crate::candidate::CandOrigin::Generalized
        };
        if is_general {
            let covered_basics = basics_covered_by(ev, id, &basics);
            // Redundancy bitmap: a general index whose coverage adds no new
            // workload pattern is a pure replication.
            if !covered_basics.is_empty() && covered_basics.iter().all(|b| covered.contains(b)) {
                telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                journal.emit(|| Event::CandidatePruned {
                    pattern: ev.candidates().get(id).pattern.to_string(),
                    reason: PruneReason::CoverageRedundant,
                });
                continue;
            }
            // Heuristic 2: bounded size expansion over the specifics.
            let spec_size: u64 = covered_basics
                .iter()
                .map(|&b| ev.candidates().get(b).size)
                .fold(0u64, u64::saturating_add);
            if spec_size > 0 && size as f64 > (1.0 + beta) * spec_size as f64 {
                telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                journal.emit(|| Event::CandidatePruned {
                    pattern: ev.candidates().get(id).pattern.to_string(),
                    reason: PruneReason::SizeRule,
                });
                continue;
            }
            // Heuristic 1: the general index must be at least as good as
            // the specifics it replaces (improved benefit over the current
            // configuration).
            let mut with_general = chosen.clone();
            with_general.push(id);
            let ib_general = ev.benefit_delta(&chosen, id);
            let mut with_specifics = chosen.clone();
            for &b in &covered_basics {
                if !with_specifics.contains(&b) {
                    with_specifics.push(b);
                }
            }
            let ib_specifics = ev.benefit(&with_specifics);
            if ib_general < ib_specifics {
                telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                journal.emit(|| Event::CandidatePruned {
                    pattern: ev.candidates().get(id).pattern.to_string(),
                    reason: PruneReason::BenefitGate,
                });
                continue;
            }
            let kept = ib_general > chosen_benefit;
            journal.emit(|| Event::KnapsackDecision {
                pattern: ev.candidates().get(id).pattern.to_string(),
                kept,
                benefit: ib_general,
                size,
            });
            if kept {
                chosen = with_general;
                chosen_benefit = ib_general;
                used = next_used;
                covered.extend(covered_basics);
            }
        } else {
            // Basic candidate: admit if the whole configuration improves.
            if covered.contains(&id) {
                telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                journal.emit(|| Event::CandidatePruned {
                    pattern: ev.candidates().get(id).pattern.to_string(),
                    reason: PruneReason::CoverageRedundant,
                });
                continue; // its pattern is already served by a chosen index
            }
            let mut with = chosen.clone();
            with.push(id);
            let ib = ev.benefit_delta(&chosen, id);
            let kept = ib > chosen_benefit;
            journal.emit(|| Event::KnapsackDecision {
                pattern: ev.candidates().get(id).pattern.to_string(),
                kept,
                benefit: ib,
                size,
            });
            if kept {
                chosen = with;
                chosen_benefit = ib;
                used = next_used;
                covered.insert(id);
            }
        }
    }

    // Final redundancy pass (paper Section VI-A): compile the workload
    // under the chosen configuration, drop indexes no plan uses, and refill
    // the reclaimed space from the remaining candidates. `covered` and
    // `used` are rebuilt from the pruned `chosen` each round — the refill
    // must not re-admit coverage (or budget) freed only on paper.
    for _ in 0..4 {
        // Each compile-and-refill round is a stop boundary: on expiry the
        // current (already budget-feasible) configuration is returned.
        if ctl.poll().is_some() {
            break;
        }
        let in_use = ev.used_candidates(&chosen);
        if in_use.len() == chosen.len() {
            break;
        }
        for &id in &chosen {
            if !in_use.contains(&id) {
                journal.emit(|| Event::CandidatePruned {
                    pattern: ev.candidates().get(id).pattern.to_string(),
                    reason: PruneReason::NotUsedInPlan,
                });
            }
        }
        chosen.retain(|id| in_use.contains(id));
        chosen_benefit = ev.benefit(&chosen);
        used = rebuild_used(ev, &chosen);
        covered = rebuild_covered(ev, &chosen, &basics);
        let mut grew = false;
        for &id in &by_density(ev, &benefits, candidates) {
            if ctl.poll().is_some() {
                break;
            }
            if chosen.contains(&id) || benefits[&id] <= 0.0 {
                continue;
            }
            let size = ev.candidates().get(id).size;
            let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) else {
                continue;
            };
            let is_general =
                ev.candidates().get(id).origin == crate::candidate::CandOrigin::Generalized;
            let covered_basics = if is_general {
                let cb = basics_covered_by(ev, id, &basics);
                if !cb.is_empty() && cb.iter().all(|b| covered.contains(b)) {
                    telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                    journal.emit(|| Event::CandidatePruned {
                        pattern: ev.candidates().get(id).pattern.to_string(),
                        reason: PruneReason::CoverageRedundant,
                    });
                    continue;
                }
                cb
            } else {
                if covered.contains(&id) {
                    telemetry.incr(xia_obs::Counter::CandidatesPrunedHeuristic);
                    journal.emit(|| Event::CandidatePruned {
                        pattern: ev.candidates().get(id).pattern.to_string(),
                        reason: PruneReason::CoverageRedundant,
                    });
                    continue;
                }
                Vec::new()
            };
            let mut with = chosen.clone();
            with.push(id);
            let ib = ev.benefit_delta(&chosen, id);
            let kept = ib > chosen_benefit;
            journal.emit(|| Event::KnapsackDecision {
                pattern: ev.candidates().get(id).pattern.to_string(),
                kept,
                benefit: ib,
                size,
            });
            if kept {
                chosen = with;
                chosen_benefit = ib;
                used = next_used;
                if is_general {
                    covered.extend(covered_basics);
                } else {
                    covered.insert(id);
                }
                grew = true;
            }
        }
        if ctl.stopped().is_some() {
            break;
        }
        if !grew {
            // Converged: one more prune below (loop) or done.
            let in_use = ev.used_candidates(&chosen);
            for &id in &chosen {
                if !in_use.contains(&id) {
                    journal.emit(|| Event::CandidatePruned {
                        pattern: ev.candidates().get(id).pattern.to_string(),
                        reason: PruneReason::NotUsedInPlan,
                    });
                }
            }
            chosen.retain(|id| in_use.contains(id));
            break;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Total size of a configuration, saturating instead of wrapping on
/// corrupt candidate sizes.
fn rebuild_used(ev: &BenefitEvaluator<'_>, chosen: &[CandId]) -> u64 {
    chosen
        .iter()
        .map(|&id| ev.candidates().get(id).size)
        .fold(0u64, u64::saturating_add)
}

/// Recomputes the coverage bitmap implied by a configuration: each chosen
/// basic covers itself; each chosen general covers the basics its pattern
/// contains.
fn rebuild_covered(
    ev: &BenefitEvaluator<'_>,
    chosen: &[CandId],
    basics: &[CandId],
) -> HashSet<CandId> {
    let mut covered = HashSet::new();
    for &id in chosen {
        if ev.candidates().get(id).origin == crate::candidate::CandOrigin::Generalized {
            covered.extend(basics_covered_by(ev, id, basics));
        } else {
            covered.insert(id);
        }
    }
    covered
}

/// Basic candidates (same collection and kind) covered by a candidate's
/// pattern.
pub(crate) fn basics_covered_by(
    ev: &BenefitEvaluator<'_>,
    id: CandId,
    basics: &[CandId],
) -> Vec<CandId> {
    let set = ev.candidates();
    let c = set.get(id);
    basics
        .iter()
        .copied()
        .filter(|&b| {
            let cb = set.get(b);
            b != id
                && cb.collection == c.collection
                && cb.kind == c.kind
                && ev.covers(&c.pattern, &cb.pattern)
        })
        .collect()
}
