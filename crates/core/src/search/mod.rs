//! Configuration search algorithms (paper Section VI).
//!
//! All five searches solve the same 0/1 knapsack: choose a subset of
//! candidate indexes whose total estimated size fits the disk budget,
//! maximizing workload benefit. They differ in how they handle *index
//! interaction* and *generality*:
//!
//! | algorithm            | interaction | goal |
//! |----------------------|-------------|------|
//! | [`greedy`]           | ignored     | classic density greedy |
//! | [`greedy_heuristics`]| full        | best config for *this* workload |
//! | [`top_down`] (lite)  | ignored     | as general as possible |
//! | [`top_down`] (full)  | full        | as general as possible |
//! | [`dp_knapsack`]      | ignored     | optimal modulo interaction |
//! | [`cophy`]            | ignored     | LP relaxation with a certified bound |
//!
//! [`cophy`] is the scale play: paired with workload compression it costs
//! one standalone batch over the compressed workload, solves the
//! fractional knapsack exactly, and rounds — reporting the LP optimum as
//! a quality certificate (see `search/cophy.rs` for the bound argument).

mod cophy;
mod dp;
mod greedy;
mod topdown;

pub use cophy::{cophy, cophy_with_outcome, CophyOutcome};
pub use dp::dp_knapsack;
pub use greedy::{greedy, greedy_heuristics};
pub use topdown::top_down;

use crate::benefit::BenefitEvaluator;
use crate::candidate::CandId;
use std::collections::HashMap;

/// Shared helper: standalone (single-index) benefits. Evaluated as one
/// batch so every singleton's what-if calls fan out across the evaluator's
/// worker pool — the largest single source of parallel speedup — and
/// memoized by the evaluator's sub-configuration cache for later reuse.
/// Public so the quality gate can score configurations in the same
/// standalone currency as [`cophy_with_outcome`]'s LP certificate.
pub fn standalone_benefits(
    ev: &mut BenefitEvaluator<'_>,
    candidates: &[CandId],
) -> HashMap<CandId, f64> {
    let configs: Vec<Vec<CandId>> = candidates.iter().map(|&id| vec![id]).collect();
    let benefits = ev.benefit_batch(&configs);
    candidates.iter().copied().zip(benefits).collect()
}

/// Sorts candidate ids by benefit density (benefit per byte), descending;
/// ties by smaller size, then by id for determinism.
pub(crate) fn by_density(
    ev: &BenefitEvaluator<'_>,
    benefits: &HashMap<CandId, f64>,
    candidates: &[CandId],
) -> Vec<CandId> {
    let mut out: Vec<CandId> = candidates.to_vec();
    out.sort_by(|&a, &b| {
        let da = density(ev, benefits, a);
        let db = density(ev, benefits, b);
        db.partial_cmp(&da)
            .expect("finite densities")
            .then_with(|| {
                ev.candidates()
                    .get(a)
                    .size
                    .cmp(&ev.candidates().get(b).size)
            })
            .then_with(|| a.cmp(&b))
    });
    out
}

pub(crate) fn density(
    ev: &BenefitEvaluator<'_>,
    benefits: &HashMap<CandId, f64>,
    id: CandId,
) -> f64 {
    let size = ev.candidates().get(id).size.max(1) as f64;
    benefits.get(&id).copied().unwrap_or(0.0) / size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorParams};
    use crate::candidate::CandidateSet;
    use xia_storage::Database;
    use xia_workloads::tpox::{self, TpoxConfig};
    use xia_workloads::Workload;

    fn setup() -> (Database, Workload, CandidateSet) {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let set = Advisor::prepare(&mut db, &w, &AdvisorParams::default());
        (db, w, set)
    }

    #[test]
    fn greedy_respects_budget_exactly() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        for frac in [0.1, 0.3, 0.7] {
            let budget = (set.config_size(&set.basic_ids()) as f64 * frac) as u64;
            let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
            let config = greedy(&mut ev, &all, budget);
            assert!(set.config_size(&config) <= budget);
        }
    }

    #[test]
    fn greedy_orders_by_density() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let benefits = standalone_benefits(&mut ev, &all);
        let order = by_density(&ev, &benefits, &all);
        for pair in order.windows(2) {
            assert!(
                density(&ev, &benefits, pair[0]) >= density(&ev, &benefits, pair[1]),
                "density order violated"
            );
        }
    }

    #[test]
    fn heuristics_never_selects_covered_duplicates() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = set.config_size(&all);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let config = greedy_heuristics(&mut ev, &all, budget, 0.10);
        // No chosen index's pattern may be covered by another chosen index
        // of the same collection/kind (redundancy would waste budget).
        for &a in &config {
            for &b in &config {
                if a == b {
                    continue;
                }
                let (ca, cb) = (set.get(a), set.get(b));
                if ca.collection == cb.collection && ca.kind == cb.kind {
                    assert!(
                        !xia_xpath::contain::covers(&ca.pattern, &cb.pattern),
                        "{} covers co-selected {}",
                        ca.pattern,
                        cb.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn topdown_prefers_generals_at_large_budget() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = 4 * set.config_size(&all);
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let config = top_down(&mut ev, &all, budget, false);
        assert!(!config.is_empty());
        let generals = config
            .iter()
            .filter(|&&id| set.get(id).origin == crate::candidate::CandOrigin::Generalized)
            .count();
        // With four times the All-Index budget, top-down keeps the DAG
        // roots (all general) rather than descending.
        assert!(generals > 0, "top-down kept no general index");
    }

    #[test]
    fn topdown_descends_to_fit_tight_budget() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = set.config_size(&set.basic_ids()) / 3;
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let config = top_down(&mut ev, &all, budget, true);
        assert!(set.config_size(&config) <= budget);
    }

    #[test]
    fn dp_dominates_greedy_on_standalone_benefit() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = set.config_size(&set.basic_ids()) / 2;
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let benefits = standalone_benefits(&mut ev, &all);
        let g = greedy(&mut ev, &all, budget);
        let d = dp_knapsack(&mut ev, &all, budget);
        let value = |cfg: &[CandId]| -> f64 {
            cfg.iter()
                .map(|id| benefits.get(id).copied().unwrap_or(0.0))
                .sum()
        };
        // DP is optimal for the independent-benefit knapsack, so it must be
        // at least as good as greedy under that objective.
        assert!(
            value(&d) >= value(&g) - 1e-6,
            "dp={} greedy={}",
            value(&d),
            value(&g)
        );
        assert!(set.config_size(&d) <= budget);
    }

    #[test]
    fn all_searches_return_empty_on_zero_budget() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        assert!(greedy(&mut ev, &all, 0).is_empty());
        assert!(greedy_heuristics(&mut ev, &all, 0, 0.1).is_empty());
        assert!(dp_knapsack(&mut ev, &all, 0).is_empty());
        assert!(top_down(&mut ev, &all, 0, false).is_empty());
        assert!(top_down(&mut ev, &all, 0, true).is_empty());
        assert!(cophy(&mut ev, &all, 0).is_empty());
    }

    #[test]
    fn corrupt_size_is_rejected_without_panic() {
        // A candidate whose size was corrupted to u64::MAX (adversarial or
        // lenient-load data) must never be admitted, and the knapsack
        // accounting must not wrap around and admit oversized followers.
        let (mut db, w, mut set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let victim = all[0];
        let budget = set.config_size(&set.basic_ids());
        set.get_mut(victim).size = u64::MAX;
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let g = greedy(&mut ev, &all, budget);
        assert!(!g.contains(&victim), "greedy admitted a u64::MAX index");
        assert!(set.config_size(&g) <= budget);
        let h = greedy_heuristics(&mut ev, &all, budget, 0.10);
        assert!(!h.contains(&victim), "heuristics admitted a u64::MAX index");
        assert!(set.config_size(&h) <= budget);
        let d = dp_knapsack(&mut ev, &all, budget);
        assert!(!d.contains(&victim), "dp admitted a u64::MAX index");
        assert!(set.config_size(&d) <= budget);
        let t = top_down(&mut ev, &all, budget, false);
        assert!(!t.contains(&victim), "top-down admitted a u64::MAX index");
        let c = cophy(&mut ev, &all, budget);
        assert!(!c.contains(&victim), "cophy admitted a u64::MAX index");
        assert!(set.config_size(&c) <= budget);
    }

    #[test]
    fn heuristics_redundancy_pass_respects_budget_and_coverage() {
        // Sweep budgets so the final redundancy pass actually prunes and
        // refills; after each run the config must stay within budget and the
        // refill must not have re-admitted coverage-redundant indexes.
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let full = set.config_size(&all);
        for frac in [0.15, 0.35, 0.6, 1.0] {
            let budget = (full as f64 * frac) as u64;
            let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
            let config = greedy_heuristics(&mut ev, &all, budget, 0.10);
            assert!(
                set.config_size(&config) <= budget,
                "budget {budget} exceeded: {}",
                set.config_size(&config)
            );
            for &a in &config {
                for &b in &config {
                    if a == b {
                        continue;
                    }
                    let (ca, cb) = (set.get(a), set.get(b));
                    if ca.collection == cb.collection && ca.kind == cb.kind {
                        assert!(
                            !xia_xpath::contain::covers(&ca.pattern, &cb.pattern),
                            "budget {budget}: {} covers co-selected {}",
                            ca.pattern,
                            cb.pattern
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_candidate_list_yields_empty_configs() {
        let (mut db, w, set) = setup();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        assert!(greedy(&mut ev, &[], u64::MAX).is_empty());
        assert!(dp_knapsack(&mut ev, &[], u64::MAX).is_empty());
        assert!(greedy_heuristics(&mut ev, &[], u64::MAX, 0.1).is_empty());
    }
}
