//! Top-down search over the generalization DAG (paper Section VI-B).
//!
//! Start from the most general candidates (the DAG roots, after removing
//! zero/negative-benefit indexes), and while the configuration exceeds the
//! budget, replace the general index with the smallest `ΔB/ΔC` by its DAG
//! children (ties → largest `ΔC`). If no replaceable general index
//! remains and the configuration still does not fit, fall back to greedy.
//!
//! *Lite* computes `ΔB` from standalone benefits (ignoring interaction);
//! *full* evaluates configurations through the optimizer.

use super::{by_density, standalone_benefits};
use crate::benefit::BenefitEvaluator;
use crate::candidate::CandId;
use std::collections::HashMap;
use xia_obs::{Event, PruneReason};

/// Top-down search. `full` selects the interaction-aware variant.
pub fn top_down(
    ev: &mut BenefitEvaluator<'_>,
    candidates: &[CandId],
    budget: u64,
    full: bool,
) -> Vec<CandId> {
    let benefits = standalone_benefits(ev, candidates);
    let in_space: std::collections::HashSet<CandId> = candidates.iter().copied().collect();

    // Preprocessing: start from the DAG roots, descending past any
    // *generalized* index with non-positive standalone benefit (paper:
    // general indexes can have zero or negative benefit — from maintenance
    // cost or from never being used in plans — and are removed up front).
    // Basic candidates are kept even at zero standalone benefit: their
    // value can be contextual (index-ANDing), which the full variant and
    // the final greedy fallback can exploit.
    let keeps = |ev: &BenefitEvaluator<'_>, benefits: &HashMap<CandId, f64>, id: CandId| {
        ev.candidates().get(id).origin == crate::candidate::CandOrigin::Basic
            || benefits.get(&id).copied().unwrap_or(0.0) > 0.0
    };
    let mut current: Vec<CandId> = Vec::new();
    let mut stack: Vec<CandId> = ev
        .candidates()
        .roots()
        .into_iter()
        .filter(|id| in_space.contains(id))
        .collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if keeps(ev, &benefits, id) {
            if !current.contains(&id) {
                current.push(id);
            }
        } else {
            let children = ev.candidates().get(id).children.clone();
            stack.extend(children.into_iter().filter(|c| in_space.contains(c)));
        }
    }
    current.sort_unstable();

    // Iterative replacement.
    loop {
        // Cooperative stop: the descent may still be over budget, so the
        // best-so-far result is a greedy pack of the current members —
        // standalone benefits are already computed, so this costs no
        // further optimizer work.
        if ev.ctl().poll().is_some() {
            return greedy_prefix(ev, &benefits, &current, budget);
        }
        let size = ev.candidates().config_size(&current);
        if size <= budget {
            fill_leftover(ev, &benefits, &mut current, candidates, budget, full);
            return current;
        }
        let Some(victim) = pick_replacement(ev, &benefits, &current, full) else {
            break;
        };
        ev.telemetry().incr(xia_obs::Counter::TopDownExpansions);
        ev.journal().emit(|| Event::CandidatePruned {
            pattern: ev.candidates().get(victim).pattern.to_string(),
            reason: PruneReason::Replaced,
        });
        let children: Vec<CandId> = ev
            .candidates()
            .get(victim)
            .children
            .iter()
            .copied()
            .filter(|&c| {
                in_space.contains(&c)
                    && (ev.candidates().get(c).origin == crate::candidate::CandOrigin::Basic
                        || benefits.get(&c).copied().unwrap_or(0.0) > 0.0)
            })
            .collect();
        current.retain(|&id| id != victim);
        for c in children {
            if !current.contains(&c) {
                current.push(c);
            }
        }
        current.sort_unstable();
    }

    // Fallback: no general index left to replace (every remaining general
    // has ΔC ≤ 0 — its children together are larger than it). Greedy-pack
    // over the remaining members *and* their DAG descendants: a stuck
    // general's specific children are still individually packable even
    // when the wholesale replacement would grow the configuration.
    let mut pool: Vec<CandId> = Vec::new();
    let mut stack = current.clone();
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if in_space.contains(&id) {
            pool.push(id);
        }
        stack.extend(ev.candidates().get(id).children.iter().copied());
    }
    let mut chosen = greedy_prefix(ev, &benefits, &pool, budget);
    fill_leftover(ev, &benefits, &mut chosen, candidates, budget, full);
    chosen
}

/// Chooses the member with the smallest `ΔB/ΔC` ratio among those whose
/// replacement shrinks the configuration (`ΔC > 0`); ties broken by the
/// largest `ΔC`.
fn pick_replacement(
    ev: &mut BenefitEvaluator<'_>,
    benefits: &HashMap<CandId, f64>,
    current: &[CandId],
    full: bool,
) -> Option<CandId> {
    let mut best: Option<(CandId, f64, f64)> = None; // (id, ratio, delta_c)
    let member_list: Vec<CandId> = current.to_vec();
    for &g in &member_list {
        let children: Vec<CandId> = ev
            .candidates()
            .get(g)
            .children
            .iter()
            .copied()
            .filter(|&c| {
                ev.candidates().get(c).origin == crate::candidate::CandOrigin::Basic
                    || benefits.get(&c).copied().unwrap_or(0.0) > 0.0
            })
            .collect();
        if children.is_empty() {
            continue;
        }
        let size_g = ev.candidates().get(g).size as f64;
        let size_children: f64 = children
            .iter()
            .filter(|c| !current.contains(c))
            .map(|&c| ev.candidates().get(c).size as f64)
            .sum();
        let delta_c = size_g - size_children;
        if delta_c <= 0.0 {
            continue; // replacing would not shrink the configuration
        }
        let delta_b = if full {
            // IB relative to the rest of the configuration.
            let rest: Vec<CandId> = current.iter().copied().filter(|&x| x != g).collect();
            let ib_g = ev.benefit_delta(&rest, g);
            let mut with_children = rest;
            for &c in &children {
                if !with_children.contains(&c) {
                    with_children.push(c);
                }
            }
            let ib_c = ev.benefit(&with_children);
            ib_g - ib_c
        } else {
            let b_g = benefits.get(&g).copied().unwrap_or(0.0);
            let b_c: f64 = children
                .iter()
                .map(|c| benefits.get(c).copied().unwrap_or(0.0))
                .sum();
            b_g - b_c
        };
        let ratio = delta_b / delta_c;
        let better = match best {
            None => true,
            Some((_, r, dc)) => ratio < r || (ratio == r && delta_c > dc),
        };
        if better {
            best = Some((g, ratio, delta_c));
        }
    }
    best.map(|(id, _, _)| id)
}

/// After the descent fits the budget, spend any leftover budget on
/// additional candidates — by density, skipping anything whose pattern is
/// already covered by the configuration (redundant for the optimizer). In
/// *full* mode each addition must improve the configuration benefit.
fn fill_leftover(
    ev: &mut BenefitEvaluator<'_>,
    benefits: &HashMap<CandId, f64>,
    current: &mut Vec<CandId>,
    candidates: &[CandId],
    budget: u64,
    full: bool,
) {
    let mut used = ev.candidates().config_size(current);
    let mut cur_benefit = if full { ev.benefit(current) } else { 0.0 };
    for id in by_density(ev, benefits, candidates) {
        // Cooperative stop: `current` already fits the budget, so it is
        // the partial result as-is.
        if ev.ctl().poll().is_some() {
            break;
        }
        if current.contains(&id) {
            continue;
        }
        let standalone = benefits.get(&id).copied().unwrap_or(0.0);
        // Lite mode has no way to value zero-standalone candidates; full
        // mode lets the configuration-benefit gate decide.
        if standalone <= 0.0 && !full {
            continue;
        }
        if standalone < 0.0 {
            continue;
        }
        let size = ev.candidates().get(id).size;
        // checked_add: corrupt candidate sizes must not wrap the
        // accumulator past the budget.
        let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) else {
            continue;
        };
        // Skip candidates already covered by a chosen index of the same
        // collection and kind — the optimizer would use only one of them.
        let c = ev.candidates().get(id);
        let covered = current.iter().any(|&g| {
            let cg = ev.candidates().get(g);
            cg.collection == c.collection && cg.kind == c.kind && ev.covers(&cg.pattern, &c.pattern)
        });
        if covered {
            continue;
        }
        if full {
            let ib = ev.benefit_delta(current, id);
            if ib <= cur_benefit {
                continue;
            }
            cur_benefit = ib;
        }
        current.push(id);
        used = next_used;
    }
    current.sort_unstable();
}

fn greedy_prefix(
    ev: &mut BenefitEvaluator<'_>,
    benefits: &HashMap<CandId, f64>,
    current: &[CandId],
    budget: u64,
) -> Vec<CandId> {
    let order = by_density(ev, benefits, current);
    let mut chosen = Vec::new();
    let mut used = 0u64;
    // First pass: candidates with positive standalone benefit, by density.
    // checked_add throughout: corrupt sizes must not wrap the accumulator.
    for &id in &order {
        let size = ev.candidates().get(id).size;
        if benefits.get(&id).copied().unwrap_or(0.0) > 0.0 {
            if let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) {
                chosen.push(id);
                used = next_used;
            }
        }
    }
    // Second pass: zero-standalone basics (contextual value) if room
    // remains.
    for &id in &order {
        let size = ev.candidates().get(id).size;
        if !chosen.contains(&id)
            && ev.candidates().get(id).origin == crate::candidate::CandOrigin::Basic
            && benefits.get(&id).copied().unwrap_or(0.0) >= 0.0
        {
            if let Some(next_used) = used.checked_add(size).filter(|&t| t <= budget) {
                chosen.push(id);
                used = next_used;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}
