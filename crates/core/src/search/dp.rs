//! Dynamic-programming 0/1 knapsack (paper Section VII-B: "finds the
//! optimal solution to the knapsack problem, but is prohibitively
//! expensive and ignores index interaction").
//!
//! Sizes are quantized to keep the table bounded; with the default
//! granularity of 1/2048 of the budget, the quantization error is well
//! under typical index-size estimation error.

use super::standalone_benefits;
use crate::benefit::BenefitEvaluator;
use crate::candidate::CandId;

/// Quantization steps for the weight dimension.
const UNITS: u64 = 2048;

/// Optimal (interaction-free) configuration by dynamic programming.
pub fn dp_knapsack(
    ev: &mut BenefitEvaluator<'_>,
    candidates: &[CandId],
    budget: u64,
) -> Vec<CandId> {
    if budget == 0 {
        return Vec::new();
    }
    let benefits = standalone_benefits(ev, candidates);
    let items: Vec<(CandId, u64, f64)> = candidates
        .iter()
        .filter_map(|&id| {
            let b = benefits.get(&id).copied().unwrap_or(0.0);
            if b <= 0.0 {
                return None;
            }
            let size = ev.candidates().get(id).size;
            // A corrupt size larger than the whole budget can never be
            // packed; dropping it here keeps the quantized weights from
            // overflowing downstream arithmetic.
            if size > budget {
                return None;
            }
            Some((id, size, b))
        })
        .collect();
    if items.is_empty() {
        return Vec::new();
    }
    let unit = (budget / UNITS).max(1);
    // Round weights *up* so quantization never overpacks the real budget.
    let weights: Vec<usize> = items
        .iter()
        .map(|(_, size, _)| (size.div_ceil(unit)) as usize)
        .collect();
    let cap = (budget / unit) as usize;

    // dp[w] = best value with capacity w; keep[i][w] for reconstruction.
    let mut dp = vec![0.0f64; cap + 1];
    let mut keep = vec![vec![false; cap + 1]; items.len()];
    for (i, (_, _, value)) in items.iter().enumerate() {
        // Cooperative stop: reconstruction over the partial table still
        // yields a budget-feasible (if suboptimal) configuration.
        if ev.ctl().poll().is_some() {
            break;
        }
        let w = weights[i];
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            let candidate_value = dp[c - w] + value;
            if candidate_value > dp[c] {
                dp[c] = candidate_value;
                keep[i][c] = true;
            }
        }
    }

    // Reconstruct. The up-rounded weights already bound the real sizes,
    // but — like both greedy knapsacks since PR 3 — the accumulator is
    // guarded with checked_add so a corrupt size can never wrap it and
    // admit an oversized index.
    let mut chosen = Vec::new();
    let mut c = cap;
    let mut real_used = 0u64;
    for i in (0..items.len()).rev() {
        if keep[i][c] {
            c -= weights[i];
            if let Some(t) = real_used.checked_add(items[i].1).filter(|&t| t <= budget) {
                chosen.push(items[i].0);
                real_used = t;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}
