//! CoPhy-style LP-relaxation search (workload compression's partner).
//!
//! The configuration problem restricted to standalone benefits is a 0/1
//! knapsack. Its *linear* relaxation (allow fractional indexes) is solved
//! exactly by Dantzig's rule: sort by benefit density and pour budget down
//! the ranking, taking a fractional slice of the first item that no longer
//! fits. The fractional optimum is an upper bound on every integer
//! configuration's standalone value — including the DP optimum — which
//! gives a *certificate*: the gap between the rounded solution and the LP
//! bound is an upper bound on the gap to the true optimum, without ever
//! running DP.
//!
//! Rounding: keep the integral prefix of the fractional solution, continue
//! greedily filling with whatever still fits, and compare against the best
//! single item. The classical knapsack argument (`prefix + break-item ≥
//! LP`, and the break item alone is a feasible configuration) guarantees
//! the better of the two is within **2×** of the LP bound — a provable
//! floor; in practice the gap is far smaller and E16 reports it against
//! the DP optimum on small instances.
//!
//! Cost: one standalone-benefit batch — |candidates| evaluations over the
//! (compressed) workload — then pure arithmetic. No interaction probing,
//! no quadratic refinement loops.

use super::{by_density, standalone_benefits};
use crate::benefit::BenefitEvaluator;
use crate::candidate::CandId;
use xia_obs::{Counter, Event};

/// The relaxation's full result: configuration plus the LP certificate.
#[derive(Debug, Clone)]
pub struct CophyOutcome {
    /// Chosen configuration (sorted candidate ids).
    pub config: Vec<CandId>,
    /// Fractional (LP) optimum — an upper bound on the standalone value
    /// of *every* budget-feasible configuration.
    pub lp_bound: f64,
    /// Standalone value of the chosen configuration. Guaranteed
    /// `≥ lp_bound / 2`; usually much closer.
    pub value: f64,
    /// Relaxation loop iterations (items examined across the fractional
    /// solve and the rounding pass).
    pub iterations: u64,
}

/// CoPhy-style search: LP relaxation + greedy rounding. See the module
/// docs for the bound argument.
pub fn cophy(ev: &mut BenefitEvaluator<'_>, candidates: &[CandId], budget: u64) -> Vec<CandId> {
    cophy_with_outcome(ev, candidates, budget).config
}

/// [`cophy`] with the LP certificate attached (used by E16 and the
/// quality gate).
pub fn cophy_with_outcome(
    ev: &mut BenefitEvaluator<'_>,
    candidates: &[CandId],
    budget: u64,
) -> CophyOutcome {
    let empty = CophyOutcome {
        config: Vec::new(),
        lp_bound: 0.0,
        value: 0.0,
        iterations: 0,
    };
    if budget == 0 || candidates.is_empty() {
        return empty;
    }
    // The atomic benefit matrix: one standalone evaluation per candidate,
    // fanned out over the worker pool and memoized for later reuse.
    let benefits = standalone_benefits(ev, candidates);
    let items: Vec<CandId> = candidates
        .iter()
        .copied()
        .filter(|&id| {
            let b = benefits.get(&id).copied().unwrap_or(0.0);
            // An oversized (possibly corrupt) item can never be packed and
            // must not enter the relaxation: a u64::MAX size would both
            // poison the fractional solve and wrap the accumulators.
            b > 0.0 && ev.candidates().get(id).size <= budget
        })
        .collect();
    if items.is_empty() {
        return empty;
    }
    let order = by_density(ev, &benefits, &items);
    let mut iterations = 0u64;

    // Fractional solve (Dantzig): pour budget down the density ranking.
    let mut lp_bound = 0.0f64;
    let mut lp_used = 0u64;
    for &id in &order {
        iterations += 1;
        let size = ev.candidates().get(id).size.max(1);
        let b = benefits[&id];
        match lp_used.checked_add(size) {
            Some(t) if t <= budget => {
                lp_bound += b;
                lp_used = t;
            }
            _ => {
                // Break item: a fractional slice exactly fills the budget,
                // and the relaxation is solved — everything below this
                // density can only do worse per byte.
                let room = (budget - lp_used) as f64;
                lp_bound += b * (room / size as f64);
                break;
            }
        }
    }

    // Greedy rounding: integral prefix, then keep filling with whatever
    // still fits. checked_add so a corrupt size can never wrap the
    // accumulator and admit an oversized follower.
    let mut config: Vec<CandId> = Vec::new();
    let mut value = 0.0f64;
    let mut used = 0u64;
    for &id in &order {
        if ev.ctl().poll().is_some() {
            // Cooperative stop: the partial fill is budget-feasible.
            break;
        }
        iterations += 1;
        let size = ev.candidates().get(id).size;
        if let Some(t) = used.checked_add(size).filter(|&t| t <= budget) {
            config.push(id);
            value += benefits[&id];
            used = t;
        }
    }
    // Half-bound fallback: the best single item. Either the rounded fill
    // or the break item alone carries ≥ half the LP value.
    if let Some(&best) = items.iter().max_by(|&&a, &&b| {
        benefits[&a]
            .partial_cmp(&benefits[&b])
            .expect("finite benefits")
            .then_with(|| b.cmp(&a)) // ties: smaller id wins the max
    }) {
        if benefits[&best] > value {
            config = vec![best];
            value = benefits[&best];
        }
    }
    config.sort_unstable();

    ev.telemetry().add(Counter::LpIterations, iterations);
    let (bound_j, value_j) = (lp_bound, value);
    ev.journal().emit(|| Event::LpRelaxed {
        bound: bound_j,
        value: value_j,
        iterations,
    });
    CophyOutcome {
        config,
        lp_bound,
        value,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorParams};
    use crate::candidate::CandidateSet;
    use crate::search::dp_knapsack;
    use xia_storage::Database;
    use xia_workloads::tpox::{self, TpoxConfig};
    use xia_workloads::Workload;

    fn setup() -> (Database, Workload, CandidateSet) {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let set = Advisor::prepare(&mut db, &w, &AdvisorParams::default());
        (db, w, set)
    }

    #[test]
    fn outcome_certifies_the_half_bound() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        for frac in [0.15, 0.4, 0.8, 1.0] {
            let budget = (set.config_size(&set.basic_ids()) as f64 * frac) as u64;
            let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
            let out = cophy_with_outcome(&mut ev, &all, budget);
            assert!(set.config_size(&out.config) <= budget);
            assert!(
                out.value <= out.lp_bound + 1e-6,
                "budget {budget}: value {} exceeds LP bound {}",
                out.value,
                out.lp_bound
            );
            assert!(
                out.value >= 0.5 * out.lp_bound - 1e-6,
                "budget {budget}: value {} below half of LP bound {}",
                out.value,
                out.lp_bound
            );
            assert!(out.iterations > 0);
        }
    }

    #[test]
    fn lp_bound_dominates_dp_value() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = set.config_size(&set.basic_ids()) / 2;
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let out = cophy_with_outcome(&mut ev, &all, budget);
        let benefits = standalone_benefits(&mut ev, &all);
        let d = dp_knapsack(&mut ev, &all, budget);
        let dp_value: f64 = d.iter().map(|id| benefits[id]).sum();
        assert!(
            dp_value <= out.lp_bound + 1e-6,
            "dp {} exceeds LP bound {}",
            dp_value,
            out.lp_bound
        );
    }

    #[test]
    fn zero_budget_and_empty_candidates_yield_empty() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        assert!(cophy(&mut ev, &all, 0).is_empty());
        assert!(cophy(&mut ev, &[], u64::MAX).is_empty());
    }

    #[test]
    fn deterministic_across_calls() {
        let (mut db, w, set) = setup();
        let all: Vec<CandId> = set.ids().collect();
        let budget = set.config_size(&set.basic_ids()) / 2;
        let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
        let a = cophy(&mut ev, &all, budget);
        let b = cophy(&mut ev, &all, budget);
        assert_eq!(a, b);
    }
}
