//! Basic-candidate enumeration via the optimizer's Enumerate Indexes mode
//! (paper Section IV).

use crate::candidate::{CandOrigin, CandidateSet};
use xia_obs::{Counter, Telemetry};
use xia_optimizer::Optimizer;
use xia_storage::Database;
use xia_workloads::Workload;

/// Runs every workload statement through the optimizer's Enumerate Indexes
/// mode and collects the basic candidate set, with affected sets
/// (statement indices) recorded per candidate.
///
/// Statistics must be fresh; this refreshes them via
/// [`Database::runstats_all`] if needed.
pub fn enumerate_candidates(db: &mut Database, workload: &Workload) -> CandidateSet {
    enumerate_candidates_traced(db, workload, &Telemetry::off())
}

/// [`enumerate_candidates`] with per-statement optimizer activity counted
/// against a telemetry sink.
pub fn enumerate_candidates_traced(
    db: &mut Database,
    workload: &Workload,
    telemetry: &Telemetry,
) -> CandidateSet {
    db.runstats_all();
    let mut set = CandidateSet::new();
    for (si, entry) in workload.entries().iter().enumerate() {
        let coll_name = entry.statement.collection().to_string();
        let Some(collection) = db.collection(&coll_name) else {
            continue; // statement over a collection that does not exist
        };
        // Statistics can be absent when collection under a stats-unavailable
        // fault (see xia-fault); skip the statement rather than panic — the
        // benefit evaluator degrades it to a heuristic cost downstream.
        let Some(stats) = db.stats_cached(&coll_name) else {
            continue;
        };
        let catalog = db.catalog(&coll_name).expect("collection has a catalog");
        let mut optimizer = Optimizer::new(collection, stats, catalog);
        optimizer.set_telemetry(telemetry);
        for cand in optimizer.enumerate_indexes(&entry.statement) {
            let id = set.insert(&cand.collection, cand.pattern, cand.kind, CandOrigin::Basic);
            set.get_mut(id).affected.insert(si);
        }
    }
    set
}

/// Incremental enumeration: runs only statements `from..` of the workload
/// through Enumerate Indexes mode, inserting into an existing candidate
/// set. Statement indices recorded in affected sets are the *global*
/// workload indices, so an append-only workload keeps previously recorded
/// indices valid. Patterns already present merge their affected sets via
/// the set's insert semantics.
///
/// Returns the ids of candidates that were *not* in the set before this
/// call (the generalization frontier for [`crate::generalize::generalize_set_extend`]).
pub fn enumerate_candidates_into(
    db: &mut Database,
    workload: &Workload,
    from: usize,
    set: &mut CandidateSet,
    telemetry: &Telemetry,
) -> Vec<crate::candidate::CandId> {
    db.runstats_all();
    let mut fresh = Vec::new();
    for (si, entry) in workload.entries().iter().enumerate().skip(from) {
        let coll_name = entry.statement.collection().to_string();
        let Some(collection) = db.collection(&coll_name) else {
            continue;
        };
        let Some(stats) = db.stats_cached(&coll_name) else {
            continue;
        };
        let catalog = db.catalog(&coll_name).expect("collection has a catalog");
        let mut optimizer = Optimizer::new(collection, stats, catalog);
        optimizer.set_telemetry(telemetry);
        for cand in optimizer.enumerate_indexes(&entry.statement) {
            let existed = set.lookup(&cand.collection, &cand.pattern, cand.kind);
            let id = set.insert(&cand.collection, cand.pattern, cand.kind, CandOrigin::Basic);
            set.get_mut(id).affected.insert(si);
            if existed.is_none() {
                fresh.push(id);
            }
        }
    }
    fresh
}

/// Fills in size estimates for every candidate from derived virtual-index
/// statistics (paper Section III: index statistics derived from data
/// statistics).
pub fn size_candidates(db: &mut Database, set: &mut CandidateSet) {
    size_candidates_traced(db, set, &Telemetry::off())
}

/// [`size_candidates`] with each statistics derivation counted against a
/// telemetry sink.
pub fn size_candidates_traced(db: &mut Database, set: &mut CandidateSet, telemetry: &Telemetry) {
    let ids: Vec<_> = set.ids().collect();
    size_candidates_ids(db, set, &ids, telemetry)
}

/// Sizes only the given candidate ids — the incremental-preparation path,
/// where pre-existing candidates already carry sizes derived from the same
/// statistics and re-deriving them would be pure waste.
pub fn size_candidates_ids(
    db: &mut Database,
    set: &mut CandidateSet,
    ids: &[crate::candidate::CandId],
    telemetry: &Telemetry,
) {
    db.runstats_all();
    for &id in ids {
        let (coll_name, pattern, kind) = {
            let c = set.get(id);
            (c.collection.clone(), c.pattern.clone(), c.kind)
        };
        let Some(collection) = db.collection(&coll_name) else {
            continue;
        };
        let Some(stats) = db.stats_cached(&coll_name) else {
            continue; // stats unavailable (fault-injected); keep size 0
        };
        telemetry.incr(Counter::StatsDerivations);
        let (_, istats) = xia_storage::Catalog::derive_stats(collection, stats, &pattern, kind);
        set.get_mut(id).size = istats.size_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpox_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("SDOC");
        for i in 0..30 {
            c.build_doc("Security", |b| {
                b.leaf("Symbol", format!("S{i}").as_str());
                b.leaf("Yield", (i % 10) as f64);
                b.begin("SecInfo");
                b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
                b.leaf("Sector", if i % 3 == 0 { "Energy" } else { "Tech" });
                b.end();
                b.end();
                b.leaf("Name", format!("N{i}").as_str());
            });
        }
        db
    }

    fn paper_workload() -> Workload {
        Workload::from_texts([
            r#"for $sec in SECURITY('SDOC')/Security
               where $sec/Symbol = "BCIIPRC"
               return $sec"#,
            r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>"#,
        ])
        .unwrap()
    }

    #[test]
    fn enumerates_paper_table1_basic_candidates() {
        let mut db = tpox_db();
        let w = paper_workload();
        let set = enumerate_candidates(&mut db, &w);
        let mut pats: Vec<String> = set.iter().map(|c| c.pattern.to_string()).collect();
        pats.sort();
        assert_eq!(
            pats,
            vec![
                "/Security/SecInfo/*/Sector",
                "/Security/Symbol",
                "/Security/Yield"
            ]
        );
        // Affected sets: C1 ← Q1; C2, C3 ← Q2.
        let c1 = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .unwrap();
        assert_eq!(set.get(c1).affected.iter().collect::<Vec<_>>(), vec![0]);
        let c3 = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Yield").unwrap(),
                xia_xpath::ValueKind::Num,
            )
            .unwrap();
        assert_eq!(set.get(c3).affected.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn shared_patterns_merge_affected_sets() {
        let mut db = tpox_db();
        let w = Workload::from_texts([
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "A" return $s"#,
            r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "B" return $s/Name"#,
        ])
        .unwrap();
        let set = enumerate_candidates(&mut db, &w);
        assert_eq!(set.len(), 1);
        let c = set.iter().next().unwrap();
        assert_eq!(c.affected.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn statements_on_missing_collections_are_skipped() {
        let mut db = tpox_db();
        let w =
            Workload::from_texts([r#"for $x in X('NOPE')/a where $x/b = 1 return $x"#]).unwrap();
        let set = enumerate_candidates(&mut db, &w);
        assert!(set.is_empty());
    }

    #[test]
    fn sizes_are_filled_and_monotone_with_generality() {
        let mut db = tpox_db();
        let w = paper_workload();
        let mut set = enumerate_candidates(&mut db, &w);
        let g = set.insert(
            "SDOC",
            xia_xpath::parse_linear_path("/Security//*").unwrap(),
            xia_xpath::ValueKind::Str,
            crate::candidate::CandOrigin::Generalized,
        );
        size_candidates(&mut db, &mut set);
        let spec = set
            .lookup(
                "SDOC",
                &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
            .unwrap();
        assert!(set.get(spec).size > 0);
        assert!(set.get(g).size >= set.get(spec).size);
    }

    #[test]
    fn update_statements_contribute_candidates_too() {
        let mut db = tpox_db();
        let w =
            Workload::from_texts([r#"delete from SDOC where /Security[Symbol = "S1"]"#]).unwrap();
        let set = enumerate_candidates(&mut db, &w);
        assert_eq!(set.len(), 1);
        assert_eq!(
            set.iter().next().unwrap().pattern.to_string(),
            "/Security/Symbol"
        );
    }
}
