//! Tuning reports: the human-readable artifact of an advisor run.
//!
//! A report shows, per workload statement, the plan and cost before and
//! after the recommended configuration, the recommended DDL, and the
//! advisor's own efficiency counters — what a DBA reads to decide whether
//! to apply the recommendation.

use crate::advisor::Recommendation;
use crate::candidate::CandidateSet;
use std::fmt::Write as _;
use xia_optimizer::Optimizer;
use xia_storage::Database;
use xia_workloads::Workload;

/// Per-statement before/after comparison.
#[derive(Debug, Clone)]
pub struct StatementReport {
    /// The statement text (first line, truncated).
    pub text: String,
    /// Estimated cost with no candidate indexes.
    pub cost_before: f64,
    /// Estimated cost under the recommended configuration.
    pub cost_after: f64,
    /// Plan summary under the recommended configuration.
    pub plan_after: String,
    /// Frequency weight.
    pub freq: f64,
}

/// A complete tuning report.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Per-statement comparisons, in workload order.
    pub statements: Vec<StatementReport>,
    /// The recommendation the report describes.
    pub recommendation: Recommendation,
}

impl TuningReport {
    /// Builds a report by re-costing every statement with and without the
    /// recommendation's virtual indexes.
    pub fn build(
        db: &mut Database,
        workload: &Workload,
        set: &CandidateSet,
        recommendation: &Recommendation,
    ) -> TuningReport {
        db.runstats_all();
        let clear = |db: &mut Database| {
            for name in db
                .collection_names()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
            {
                if let Some(cat) = db.catalog_mut(&name) {
                    cat.drop_all_virtual();
                }
            }
        };
        clear(db);
        let costs_before: Vec<f64> = workload
            .entries()
            .iter()
            .map(|e| cost_of(db, &e.statement).unwrap_or(0.0))
            .collect();

        // Install the recommendation as virtual indexes.
        for &id in &recommendation.config {
            let c = set.get(id);
            let (pattern, kind, coll) = (c.pattern.clone(), c.kind, c.collection.clone());
            if let Some((collection, catalog, stats)) = db.parts_mut(&coll) {
                catalog.create_virtual(collection, stats, &pattern, kind);
            }
        }
        let statements: Vec<StatementReport> = workload
            .entries()
            .iter()
            .zip(costs_before)
            .map(|(e, cost_before)| {
                let (cost_after, plan_after) = match plan_of(db, &e.statement) {
                    Some((c, p)) => (c, p),
                    None => (0.0, "n/a".to_string()),
                };
                StatementReport {
                    text: first_line(&e.text),
                    cost_before,
                    cost_after,
                    plan_after,
                    freq: e.freq,
                }
            })
            .collect();
        clear(db);
        TuningReport {
            statements,
            recommendation: recommendation.clone(),
        }
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let rec = &self.recommendation;
        let mut out = String::new();
        let _ = writeln!(out, "=== XML Index Advisor — tuning report ===");
        let _ = writeln!(
            out,
            "workload: {} statements; candidates: {} basic, {} total",
            self.statements.len(),
            rec.candidates_basic,
            rec.candidates_total
        );
        let _ = writeln!(
            out,
            "recommendation: {} indexes ({} general, {} specific), {} bytes",
            rec.indexes.len(),
            rec.general_count,
            rec.specific_count,
            rec.total_size
        );
        let _ = writeln!(
            out,
            "estimated workload speedup: {:.2}x (cost {:.1} → {:.1}); benefit {:.1}",
            rec.speedup, rec.baseline_cost, rec.workload_cost, rec.est_benefit
        );
        let _ = writeln!(
            out,
            "advisor: {:.1} ms, {} Evaluate-mode optimizer calls",
            rec.advisor_time.as_secs_f64() * 1e3,
            rec.eval_stats.optimizer_calls
        );
        let _ = writeln!(out, "\n--- recommended DDL ---");
        out.push_str(&rec.ddl());
        let _ = writeln!(out, "\n--- per-statement impact ---");
        for s in &self.statements {
            let speedup = if s.cost_after > 0.0 {
                s.cost_before / s.cost_after
            } else {
                1.0
            };
            let _ = writeln!(
                out,
                "{:>8.1} → {:>8.1} ({speedup:>5.2}x, freq {:.0})  {}",
                s.cost_before, s.cost_after, s.freq, s.text
            );
            let _ = writeln!(out, "          plan: {}", s.plan_after);
        }
        out
    }
}

fn first_line(text: &str) -> String {
    let line = text.lines().next().unwrap_or("").trim();
    if line.len() > 72 {
        format!("{}…", &line[..71])
    } else {
        line.to_string()
    }
}

fn cost_of(db: &Database, stmt: &xia_xpath::Statement) -> Option<f64> {
    let (collection, catalog, stats) = db.parts(stmt.collection())?;
    Some(
        Optimizer::new(collection, stats, catalog)
            .optimize(stmt)
            .total_cost,
    )
}

fn plan_of(db: &Database, stmt: &xia_xpath::Statement) -> Option<(f64, String)> {
    let (collection, catalog, stats) = db.parts(stmt.collection())?;
    let plan = Optimizer::new(collection, stats, catalog).optimize(stmt);
    Some((plan.total_cost, plan.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorParams, SearchAlgorithm};
    use xia_workloads::tpox::{self, TpoxConfig};

    #[test]
    fn report_shows_per_statement_improvements() {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        let rec = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            u64::MAX / 2,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        let report = TuningReport::build(&mut db, &w, &set, &rec);
        assert_eq!(report.statements.len(), w.len());
        // Every improved statement's after-cost is at most its before-cost.
        let improved = report
            .statements
            .iter()
            .filter(|s| s.cost_after < s.cost_before)
            .count();
        assert!(improved >= 5, "only {improved} statements improved");
        for s in &report.statements {
            assert!(s.cost_after <= s.cost_before + 1e-6, "{}", s.text);
        }
        let text = report.render();
        assert!(text.contains("tuning report"), "{text}");
        assert!(text.contains("CREATE INDEX"), "{text}");
        assert!(text.contains("IXAND"), "{text}");
        // Report building leaves no virtual indexes behind.
        for name in db.collection_names() {
            assert!(db.catalog(name).unwrap().iter().all(|d| !d.is_virtual()));
        }
    }

    #[test]
    fn report_on_empty_recommendation_is_flat() {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let params = AdvisorParams::default();
        let set = Advisor::prepare(&mut db, &w, &params);
        let rec = Advisor::recommend_prepared(
            &mut db,
            &w,
            &set,
            0,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .unwrap();
        let report = TuningReport::build(&mut db, &w, &set, &rec);
        for s in &report.statements {
            assert!((s.cost_after - s.cost_before).abs() < 1e-9);
        }
    }
}
