//! Candidate generalization — the paper's Algorithm 1 (`generalizeStep`)
//! and Table II (`advanceStep` rules), applied to fixpoint.
//!
//! Generalizing a pair of linear patterns walks both step lists in
//! parallel, emitting for each consumed pair a step whose name test is the
//! common name (or `*`) and whose axis is `//` if either input axis is
//! `//` (the paper's `genAxis`). The `advanceStep` rules govern pointer
//! movement:
//!
//! 1. both at their last step → done (after the Rule 0 rewrite);
//! 2. / 3. one side at its last step → the other side jumps to *its* last
//!    step, recording the skipped middle steps as a `/*` step;
//! 4. both in the middle → three alternatives: advance both, or align the
//!    current step of one side with its first re-occurrence in the other
//!    side's remainder (this handles repeated node names, e.g.
//!    `/a/b/d` ⊔ `/a/d/b/d` → `{/a//d, /a//b/d}`);
//! 0. (rewrite) middle `/*` steps are folded into a `//` axis on the next
//!    step: `/a/*/b` → `/a//b`.
//!
//! A pair is only generalized if compatible: same collection and same
//! value kind (the paper's type/namespace compatibility check; candidate
//! C3 of Table I cannot generalize with C1/C2 because it is numerical).
//!
//! Two fixpoint drivers share the per-pair rule engine:
//!
//! * [`generalize_set_naive`] — the literal Algorithm 1 loop: every round
//!   re-scans (frontier × all) ordered pairs, checking compatibility pair
//!   by pair.
//! * [`generalize_set_fast`] — the semi-naive evaluation: candidates are
//!   bucketed by their (collection, value-kind) compatibility key so
//!   incompatible pairs are never enumerated, each unordered pair is
//!   visited once per round (the naive loop's second, reversed visit is a
//!   provable no-op), and `generalize_pair` results are memoized under a
//!   canonical pair key (the rule engine is symmetric in its arguments).
//!   Skipped work is counted (`pairs_skipped_bucket`, `pairs_memo_hits`)
//!   but the *effect sequence* on the candidate set — insertion order of
//!   new candidates, DAG edge order, affected-set unions — is byte-for-
//!   byte the naive one, which the determinism suite pins A/B.

use crate::candidate::{CandId, CandOrigin, CandidateSet};
use std::collections::{HashMap, HashSet};
use xia_obs::{Counter, Event, EventJournal, Telemetry};
use xia_xpath::{contain, Axis, LinearPath, LinearStep, NameTest, ValueKind};

/// `genAxis` from Algorithm 1: descendant if either input is descendant.
fn gen_axis(a: Axis, b: Axis) -> Axis {
    if a == Axis::Descendant || b == Axis::Descendant {
        Axis::Descendant
    } else {
        Axis::Child
    }
}

/// Generalized step for a consumed pair of steps.
fn gen_node(a: &LinearStep, b: &LinearStep) -> LinearStep {
    let test = if a.test == b.test {
        a.test
    } else {
        NameTest::Wildcard
    };
    LinearStep {
        axis: gen_axis(a.axis, b.axis),
        test,
    }
}

/// A `/*` filler step recording skipped middle steps.
fn filler() -> LinearStep {
    LinearStep {
        axis: Axis::Child,
        test: NameTest::Wildcard,
    }
}

/// Generalizes a pair of linear patterns, returning every generalized
/// pattern the paper's rules produce (deduplicated and sorted, Rule 0
/// applied). The result may be empty only for degenerate (empty) inputs.
/// Symmetric: `generalize_pair(p, q)` and `generalize_pair(q, p)` return
/// the same list (`gen_axis` and `gen_node` are symmetric and Rules 2/3
/// and the two Rule 4 alignments swap roles).
pub fn generalize_pair(p: &LinearPath, q: &LinearPath) -> Vec<LinearPath> {
    if p.is_empty() || q.is_empty() {
        return Vec::new();
    }
    let mut results: HashSet<LinearPath> = HashSet::new();
    // An explicit worklist instead of recursion: a frame is the partial
    // generalization built so far plus the two cursors. Rule 4 branches by
    // pushing up to three successor frames, so the traversal is the same
    // DFS the recursive formulation performed — but paths at the
    // MAX_PATH_STEPS parser cap cannot overflow the thread stack.
    let mut work: Vec<(Vec<LinearStep>, usize, usize)> = vec![(Vec::new(), 0, 0)];
    while let Some((gen, i, j)) = work.pop() {
        let last_p = i + 1 == p.steps.len();
        let last_q = j + 1 == q.steps.len();
        match (last_p, last_q) {
            // Rule 1 (via Algorithm 1 line 4-12): consume the two last
            // steps together, rewrite, emit.
            (true, true) => {
                let mut gen = gen;
                gen.push(gen_node(&p.steps[i], &q.steps[j]));
                results.insert(LinearPath::new(gen).rewrite_rule0());
            }
            // Rules 2/3: a last step can only generalize with another last
            // step; fast-forward the non-last side to its last step,
            // recording the skipped steps as a `/*` filler.
            (true, false) => {
                let mut gen = gen;
                gen.push(filler());
                work.push((gen, i, q.steps.len() - 1));
            }
            (false, true) => {
                let mut gen = gen;
                gen.push(filler());
                work.push((gen, p.steps.len() - 1, j));
            }
            // Rule 4: both middle steps.
            (false, false) => {
                // (1) Consume the pair and advance both.
                let mut g1 = gen.clone();
                g1.push(gen_node(&p.steps[i], &q.steps[j]));
                work.push((g1, i + 1, j + 1));
                // (2) Align q's current step with its first re-occurrence
                // in p's remainder (skipping p steps → filler).
                if let Some(k) = find_occurrence(&p.steps, i + 1, q.steps[j].test) {
                    let mut g2 = gen.clone();
                    g2.push(filler());
                    work.push((g2, k, j));
                }
                // (3) Symmetric.
                if let Some(k) = find_occurrence(&q.steps, j + 1, p.steps[i].test) {
                    let mut g3 = gen;
                    g3.push(filler());
                    work.push((g3, i, k));
                }
            }
        }
    }
    // Hash-based dedup plus an explicit sort reproduces the ordering the
    // original `BTreeSet` collection gave (`Ord` on paths is total).
    let mut out: Vec<LinearPath> = results.into_iter().collect();
    out.sort_unstable();
    out
}

fn find_occurrence(steps: &[LinearStep], from: usize, test: NameTest) -> Option<usize> {
    (from..steps.len()).find(|&k| steps[k].test == test)
}

/// Applies pairwise generalization over a candidate set until no new
/// pattern appears (the paper's fixpoint), inserting generalized
/// candidates and recording DAG edges `generalized → generalized-from`.
/// Uncounted convenience wrapper over [`generalize_set_naive`].
pub fn generalize_set(set: &mut CandidateSet) -> Vec<CandId> {
    generalize_set_naive(set, &Telemetry::off(), &EventJournal::off())
}

/// The literal Algorithm 1 fixpoint: each round visits every ordered
/// (frontier × all) pair and re-derives compatibility and `generalize_pair`
/// from scratch. This is the parity baseline the semi-naive path is
/// verified against (`--no-fastpath`).
///
/// Two candidates are compatible iff they live on the same collection and
/// have the same value kind. Generalized results that are equivalent to an
/// input pattern are not re-inserted (no self-edges); results are verified
/// to cover both inputs (a safety net around the rule engine).
///
/// Returns the ids of the newly created generalized candidates.
pub fn generalize_set_naive(
    set: &mut CandidateSet,
    t: &Telemetry,
    j: &EventJournal,
) -> Vec<CandId> {
    let mut created = Vec::new();
    let mut frontier: Vec<CandId> = set.ids().collect();
    let mut all: Vec<CandId> = frontier.clone();
    while !frontier.is_empty() {
        let mut new_ids = Vec::new();
        for &a in &frontier {
            for &b in &all {
                if a == b {
                    continue;
                }
                // The naive loop *examines* every ordered pair — the
                // compatibility check below is itself per-pair work the
                // semi-naive buckets avoid, so it counts as a visit.
                t.incr(Counter::GeneralizePairsVisited);
                let (ca, cb) = (set.get(a), set.get(b));
                if ca.collection != cb.collection || ca.kind != cb.kind {
                    continue;
                }
                let (pa, pb, coll, kind) = (
                    ca.pattern.clone(),
                    cb.pattern.clone(),
                    ca.collection.clone(),
                    ca.kind,
                );
                let results = generalize_pair(&pa, &pb);
                apply_pair_results(set, &results, a, b, &pa, &pb, &coll, kind, j, |gid| {
                    new_ids.push(gid);
                    created.push(gid);
                });
            }
        }
        all.extend(new_ids.iter().copied());
        frontier = new_ids;
    }
    union_affected_from_basics(set, &created);
    created
}

/// Semi-naive fixpoint: same effect sequence as [`generalize_set_naive`],
/// an order of magnitude fewer pair visits.
///
/// Three reductions, each a no-op elimination:
///
/// * **bucketing** — candidates are grouped by (collection, value-kind);
///   the naive loop's incompatible pairs `continue` without effect, so
///   iterating only `a`'s own bucket (in global insertion order) visits
///   exactly the pairs that do something, in the same order.
/// * **unordered-pair dedup** — when both `a` and `b` are in the frontier,
///   the naive loop visits (a, b) and later (b, a). `generalize_pair` is
///   symmetric and every set operation it triggers is idempotent, so the
///   reversed second visit (the one where `b` precedes `a` in the
///   frontier) has no effect and is skipped.
/// * **memoization** — `generalize_pair` results are cached under the
///   canonical (sorted) pattern pair, so re-deriving the same pair in a
///   later round (frontier member against old candidate already paired
///   last round cannot recur, but distinct candidate pairs with equal
///   *patterns* across collections/kinds can) costs a lookup.
///
/// Buckets are extended with the round's new candidates only after the
/// round completes, mirroring the naive loop's round-start snapshot of
/// `all`.
pub fn generalize_set_fast(set: &mut CandidateSet, t: &Telemetry, j: &EventJournal) -> Vec<CandId> {
    let frontier: Vec<CandId> = set.ids().collect();
    let created = fixpoint_fast(set, frontier, t, j);
    union_affected_from_basics(set, &created);
    created
}

/// Extends an already-generalized candidate set with newly enumerated
/// candidates: the same semi-naive fixpoint as [`generalize_set_fast`],
/// but seeded with `new_ids` as the initial frontier, so round one visits
/// exactly the new×all pairs (old×old pairs were closed by the previous
/// fixpoint and revisiting them is a provable no-op). `new_ids` must
/// already be inserted into `set`. After the fixpoint, the affected sets
/// of *every* generalized candidate are re-unioned from the basics, so
/// pre-existing generalizations pick up statements that merged into
/// basics they cover.
///
/// Returns the ids of the newly created generalized candidates.
pub fn generalize_set_extend(
    set: &mut CandidateSet,
    new_ids: &[CandId],
    t: &Telemetry,
    j: &EventJournal,
) -> Vec<CandId> {
    let created = fixpoint_fast(set, new_ids.to_vec(), t, j);
    let generalized: Vec<CandId> = set
        .iter()
        .filter(|c| c.origin == CandOrigin::Generalized)
        .map(|c| c.id)
        .collect();
    union_affected_from_basics(set, &generalized);
    created
}

/// The semi-naive round loop shared by [`generalize_set_fast`] (frontier =
/// the whole set) and [`generalize_set_extend`] (frontier = the new
/// candidates). Buckets always span the whole set, so frontier members
/// pair against everything compatible. Does *not* touch affected sets —
/// callers do, because full runs and extensions union different id sets.
fn fixpoint_fast(
    set: &mut CandidateSet,
    mut frontier: Vec<CandId>,
    t: &Telemetry,
    j: &EventJournal,
) -> Vec<CandId> {
    let mut created = Vec::new();
    let mut buckets: HashMap<(String, ValueKind), Vec<CandId>> = HashMap::new();
    let mut all_len = 0usize;
    let all_ids: Vec<CandId> = set.ids().collect();
    for id in all_ids {
        let c = set.get(id);
        buckets
            .entry((c.collection.clone(), c.kind))
            .or_default()
            .push(id);
        all_len += 1;
    }
    // Two-level memo (smaller pattern → larger pattern → results) so hits
    // cost two borrowed lookups and misses move their already-owned
    // patterns in — no per-pair clones on either path.
    let mut memo: HashMap<LinearPath, HashMap<LinearPath, Vec<LinearPath>>> = HashMap::new();
    while !frontier.is_empty() {
        // Frontier positions drive the unordered-pair dedup: the naive
        // loop's first visit of a frontier pair is the one where `a` comes
        // earlier in the frontier.
        let fpos: HashMap<CandId, usize> = frontier
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut new_ids = Vec::new();
        for (fa, &a) in frontier.iter().enumerate() {
            let ca = set.get(a);
            let key = (ca.collection.clone(), ca.kind);
            // Buckets are only extended at round end, so the round-start
            // snapshot can be borrowed across the set mutations below
            // (only `set`, `memo`, and `new_ids` change inside the loop).
            let bucket: &[CandId] = buckets.get(&key).map_or(&[], Vec::as_slice);
            // Everything outside the bucket is an incompatible pair the
            // naive loop would have enumerated and discarded.
            t.add(Counter::PairsSkippedBucket, (all_len - bucket.len()) as u64);
            for &b in bucket {
                if b == a {
                    continue;
                }
                if let Some(&fb) = fpos.get(&b) {
                    if fb < fa {
                        // (b, a) was already processed this round; this
                        // reversed visit is the naive loop's no-op.
                        continue;
                    }
                }
                t.incr(Counter::GeneralizePairsVisited);
                let (pa, pb, coll, kind) = {
                    let (ca, cb) = (set.get(a), set.get(b));
                    (
                        ca.pattern.clone(),
                        cb.pattern.clone(),
                        ca.collection.clone(),
                        ca.kind,
                    )
                };
                let swapped = pb < pa;
                let cached = {
                    let (k1, k2) = if swapped { (&pb, &pa) } else { (&pa, &pb) };
                    memo.get(k1).and_then(|m| m.get(k2))
                };
                if let Some(results) = cached {
                    t.incr(Counter::PairsMemoHits);
                    apply_pair_results(set, results, a, b, &pa, &pb, &coll, kind, j, |gid| {
                        new_ids.push(gid);
                        created.push(gid);
                    });
                } else {
                    let r = generalize_pair(&pa, &pb);
                    apply_pair_results(set, &r, a, b, &pa, &pb, &coll, kind, j, |gid| {
                        new_ids.push(gid);
                        created.push(gid);
                    });
                    let (k1, k2) = if swapped { (pb, pa) } else { (pa, pb) };
                    memo.entry(k1).or_default().insert(k2, r);
                }
            }
        }
        for &gid in &new_ids {
            let c = set.get(gid);
            buckets
                .entry((c.collection.clone(), c.kind))
                .or_default()
                .push(gid);
        }
        all_len += new_ids.len();
        frontier = new_ids;
    }
    created
}

/// Applies one visited pair's generalization results to the set — the loop
/// body shared verbatim by both fixpoints, so their per-pair effects cannot
/// drift apart. `on_new` fires for results whose pattern was not in the set
/// before this call; the journal records that first derivation only, so
/// fast and naive runs emit identical event streams.
#[allow(clippy::too_many_arguments)]
fn apply_pair_results(
    set: &mut CandidateSet,
    results: &[LinearPath],
    a: CandId,
    b: CandId,
    pa: &LinearPath,
    pb: &LinearPath,
    coll: &str,
    kind: ValueKind,
    j: &EventJournal,
    mut on_new: impl FnMut(CandId),
) {
    for g in results {
        // Safety: a generalization must cover both inputs.
        if !contain::covers(g, pa) || !contain::covers(g, pb) {
            continue;
        }
        // Skip results equivalent to an input (no new pattern).
        if g == pa || g == pb {
            let target = if g == pa { a } else { b };
            let other = if g == pa { b } else { a };
            set.add_edge(target, other);
            continue;
        }
        let existing = set.lookup(coll, g, kind);
        let gid = set.insert(coll, g.clone(), kind, CandOrigin::Generalized);
        set.add_edge(gid, a);
        set.add_edge(gid, b);
        if existing.is_none() {
            j.emit(|| Event::PairGeneralized {
                collection: coll.to_string(),
                left: pa.to_string(),
                right: pb.to_string(),
                result: g.to_string(),
            });
            j.emit(|| Event::CandidateGenerated {
                collection: coll.to_string(),
                pattern: g.to_string(),
                kind: kind.to_string(),
                origin: "generalized".to_string(),
            });
            on_new(gid);
        }
    }
}

/// Affected sets of generalized candidates: union over the basic
/// candidates they cover (statements that produced covered patterns).
fn union_affected_from_basics(set: &mut CandidateSet, created: &[CandId]) {
    let basics = set.basic_ids();
    for &gid in created {
        let gp = set.get(gid).pattern.clone();
        let mut affected = set.get(gid).affected.clone();
        for &b in &basics {
            let cb = set.get(b);
            if cb.collection == set.get(gid).collection
                && cb.kind == set.get(gid).kind
                && contain::covers(&gp, &cb.pattern)
            {
                affected.union_with(&cb.affected.clone());
            }
        }
        set.get_mut(gid).affected = affected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandOrigin, CandidateSet};
    use xia_xpath::parse_linear_path;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).unwrap()
    }

    fn gen(a: &str, b: &str) -> Vec<String> {
        generalize_pair(&lp(a), &lp(b))
            .into_iter()
            .map(|p| p.to_string())
            .collect()
    }

    #[test]
    fn paper_example_c1_c2() {
        // /Security/Symbol ⊔ /Security/SecInfo/*/Sector → /Security//*
        let out = gen("/Security/Symbol", "/Security/SecInfo/*/Sector");
        assert_eq!(out, vec!["/Security//*"]);
    }

    #[test]
    fn paper_example_reoccurrence() {
        // /a/b/d ⊔ /a/d/b/d → {/a//d, /a//b/d} (paper Section V).
        let out = gen("/a/b/d", "/a/d/b/d");
        assert!(out.contains(&"/a//d".to_string()), "{out:?}");
        assert!(out.contains(&"/a//b/d".to_string()), "{out:?}");
    }

    #[test]
    fn identical_paths_generalize_to_themselves() {
        assert_eq!(gen("/a/b/c", "/a/b/c"), vec!["/a/b/c"]);
    }

    #[test]
    fn same_parent_different_leaves() {
        assert_eq!(
            gen("/Security/Symbol", "/Security/Yield"),
            vec!["/Security/*"]
        );
    }

    #[test]
    fn descendant_axis_propagates() {
        // genAxis: // wins.
        let out = gen("/a//b", "/a/b");
        assert_eq!(out, vec!["/a//b"]);
    }

    #[test]
    fn different_roots_generalize_to_descendant_leaf() {
        // The generalized middle `*` is folded by Rule 0: /*/x → //x.
        let out = gen("/a/x", "/b/x");
        assert_eq!(out, vec!["//x"]);
    }

    #[test]
    fn different_lengths_produce_descendant_target() {
        let out = gen("/a/b", "/a/x/y/b");
        assert!(out.contains(&"/a//b".to_string()), "{out:?}");
    }

    #[test]
    fn results_cover_both_inputs_exhaustive() {
        let samples = [
            "/a/b",
            "/a/b/c",
            "/a//c",
            "/a/*/c",
            "/x/y",
            "/a/b/d",
            "/a/d/b/d",
            "/Security/SecInfo/StockInfo/Sector",
            "/Security/Symbol",
        ];
        for a in &samples {
            for b in &samples {
                let (pa, pb) = (lp(a), lp(b));
                for g in generalize_pair(&pa, &pb) {
                    assert!(
                        contain::covers(&g, &pa) && contain::covers(&g, &pb),
                        "{g} does not cover {a} ⊔ {b}"
                    );
                }
            }
        }
    }

    /// Regression (stack-safety): the rule engine must survive paths at
    /// the parser's MAX_PATH_STEPS cap. The recursive formulation nested
    /// one stack frame per consumed step pair; the worklist keeps frames
    /// on the heap. Distinct names keep Rule 4 single-branch, so this
    /// exercises maximum *depth*, not exponential width.
    #[test]
    fn generalize_pair_survives_max_path_steps() {
        let labels: Vec<String> = (0..xia_xpath::MAX_PATH_STEPS)
            .map(|i| format!("s{i}"))
            .collect();
        let p = LinearPath::from_labels(labels.iter().map(|s| s.as_str()));
        assert_eq!(p.len(), xia_xpath::MAX_PATH_STEPS);
        let out = generalize_pair(&p, &p);
        assert_eq!(out, vec![p.clone()], "p ⊔ p must be p itself");
        // A shifted variant still terminates and produces covering output
        // (the off-by-one tail makes Rules 2/3 fire at full depth too).
        let q = p.join(&[LinearStep::child("tail")]);
        let out = generalize_pair(&p, &q);
        assert!(!out.is_empty());
    }

    /// `generalize_pair` is symmetric — the property the canonical memo
    /// key in the semi-naive fixpoint relies on.
    #[test]
    fn generalize_pair_is_symmetric_on_pool() {
        let pool = [
            "/a/b", "/a/b/c", "/a//c", "/a/*/c", "/x/y", "/a/b/d", "/a/d/b/d", "/a//*",
        ];
        for a in &pool {
            for b in &pool {
                assert_eq!(gen(a, b), gen(b, a), "asymmetric on ({a}, {b})");
            }
        }
    }

    #[test]
    fn fixpoint_expands_set_and_builds_dag() {
        let mut set = CandidateSet::new();
        let c1 = set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        let c2 = set.insert(
            "SDOC",
            lp("/Security/SecInfo/*/Sector"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        // C3 is numerical: must not generalize with C1/C2 (paper Table I).
        let c3 = set.insert(
            "SDOC",
            lp("/Security/Yield"),
            xia_xpath::ValueKind::Num,
            CandOrigin::Basic,
        );
        set.get_mut(c1).affected.insert(0);
        set.get_mut(c2).affected.insert(1);
        set.get_mut(c3).affected.insert(1);
        let created = generalize_set(&mut set);
        assert_eq!(created.len(), 1);
        let g = set.get(created[0]);
        assert_eq!(g.pattern.to_string(), "/Security//*");
        assert_eq!(g.kind, xia_xpath::ValueKind::Str);
        let mut kids = g.children.clone();
        kids.sort();
        assert_eq!(kids, vec![c1, c2]);
        // Affected set of the generalization = union of its basics'.
        assert!(g.affected.contains(0) && g.affected.contains(1));
        // The numeric candidate remains a root (nothing generalized it).
        assert!(set.get(c3).parents.is_empty());
    }

    #[test]
    fn cross_collection_candidates_do_not_generalize() {
        let mut set = CandidateSet::new();
        set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        set.insert(
            "ODOC",
            lp("/Order/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        let created = generalize_set(&mut set);
        assert!(created.is_empty());
    }

    #[test]
    fn fixpoint_terminates_on_many_siblings() {
        let mut set = CandidateSet::new();
        for leaf in ["a", "b", "c", "d", "e"] {
            set.insert(
                "C",
                lp(&format!("/root/mid/{leaf}")),
                xia_xpath::ValueKind::Str,
                CandOrigin::Basic,
            );
        }
        let created = generalize_set(&mut set);
        // All pairs generalize to the single /root/mid/*.
        assert_eq!(created.len(), 1);
        assert_eq!(set.get(created[0]).pattern.to_string(), "/root/mid/*");
        assert_eq!(set.get(created[0]).children.len(), 5);
    }

    #[test]
    fn generalization_expansion_is_bounded() {
        // Mixed-shape candidates must reach a fixpoint without explosion.
        let mut set = CandidateSet::new();
        for p in ["/s/a/x", "/s/b/x", "/s/a/y", "/s/c/d/x", "/s//y", "/t/a"] {
            set.insert("C", lp(p), xia_xpath::ValueKind::Str, CandOrigin::Basic);
        }
        let created = generalize_set(&mut set);
        assert!(!created.is_empty());
        assert!(set.len() < 60, "unexpected explosion: {}", set.len());
    }

    /// Builds the same seeded candidate set twice and runs each fixpoint
    /// on its own copy, asserting the *entire observable state* matches:
    /// candidate order, patterns, origins, affected sets, and DAG edge
    /// lists (in stored order, not sorted — edge insertion order is part
    /// of the parity contract).
    fn assert_fixpoints_agree(seed_paths: &[(&str, &str, xia_xpath::ValueKind)]) {
        let build = || {
            let mut set = CandidateSet::new();
            for (i, (coll, path, kind)) in seed_paths.iter().enumerate() {
                let id = set.insert(coll, lp(path), *kind, CandOrigin::Basic);
                set.get_mut(id).affected.insert(i);
            }
            set
        };
        let mut naive_set = build();
        let mut fast_set = build();
        let naive_journal = EventJournal::new();
        let naive_created = generalize_set_naive(&mut naive_set, &Telemetry::off(), &naive_journal);
        let t = Telemetry::new();
        let fast_journal = EventJournal::new();
        let fast_created = generalize_set_fast(&mut fast_set, &t, &fast_journal);
        assert_eq!(
            naive_journal.to_jsonl(),
            fast_journal.to_jsonl(),
            "journal streams diverge"
        );
        assert_eq!(naive_created, fast_created, "created ids diverge");
        assert_eq!(naive_set.len(), fast_set.len(), "set sizes diverge");
        for (n, f) in naive_set.iter().zip(fast_set.iter()) {
            assert_eq!(n.id, f.id);
            assert_eq!(n.collection, f.collection);
            assert_eq!(n.pattern, f.pattern, "pattern diverges at {:?}", n.id);
            assert_eq!(n.kind, f.kind);
            assert_eq!(n.origin, f.origin);
            assert_eq!(n.children, f.children, "children diverge at {}", n.pattern);
            assert_eq!(n.parents, f.parents, "parents diverge at {}", n.pattern);
            assert_eq!(
                n.affected.iter().collect::<Vec<_>>(),
                f.affected.iter().collect::<Vec<_>>(),
                "affected diverges at {}",
                n.pattern
            );
        }
    }

    #[test]
    fn semi_naive_matches_naive_on_paper_workload() {
        use xia_xpath::ValueKind::{Num, Str};
        assert_fixpoints_agree(&[
            ("SDOC", "/Security/Symbol", Str),
            ("SDOC", "/Security/SecInfo/*/Sector", Str),
            ("SDOC", "/Security/Yield", Num),
            ("ODOC", "/Order/Price", Num),
        ]);
    }

    /// Property: semi-naive ≡ naive on randomized synthetic candidate
    /// sets spanning several collections and kinds (where bucketing does
    /// real work) with repeated-name paths (where Rule 4 branches).
    #[test]
    fn semi_naive_matches_naive_on_random_workloads() {
        // Deterministic splitmix64 case generator.
        let mut state = 0x5EED_0012u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as usize
        };
        let labels = ["a", "b", "c", "d", "Sector"];
        let colls = ["C1", "C2", "C3"];
        let kinds = [xia_xpath::ValueKind::Str, xia_xpath::ValueKind::Num];
        for _case in 0..30 {
            let n = 3 + next() % 6;
            let seeds: Vec<(String, String, xia_xpath::ValueKind)> = (0..n)
                .map(|_| {
                    let depth = 1 + next() % 4;
                    let path = format!(
                        "/root{}",
                        (0..depth)
                            .map(|_| format!("/{}", labels[next() % labels.len()]))
                            .collect::<String>()
                    );
                    (
                        colls[next() % colls.len()].to_string(),
                        path,
                        kinds[next() % kinds.len()],
                    )
                })
                .collect();
            let borrowed: Vec<(&str, &str, xia_xpath::ValueKind)> = seeds
                .iter()
                .map(|(c, p, k)| (c.as_str(), p.as_str(), *k))
                .collect();
            assert_fixpoints_agree(&borrowed);
        }
    }

    /// Content signature of a candidate set, id-independent: one record
    /// per candidate with DAG edges rendered as pattern strings, sorted.
    /// Extension and full re-preparation may assign different ids to the
    /// same derived patterns, so parity is asserted on content.
    fn content_signature(set: &CandidateSet) -> Vec<String> {
        let pat = |id: CandId| set.get(id).pattern.to_string();
        let mut out: Vec<String> = set
            .iter()
            .map(|c| {
                let mut kids: Vec<String> = c.children.iter().map(|&k| pat(k)).collect();
                kids.sort();
                let mut parents: Vec<String> = c.parents.iter().map(|&k| pat(k)).collect();
                parents.sort();
                format!(
                    "{}|{}|{:?}|{:?}|{:?}|kids={kids:?}|parents={parents:?}",
                    c.collection,
                    c.pattern,
                    c.kind,
                    c.origin,
                    c.affected.iter().collect::<Vec<_>>()
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Extending an already-generalized set with new basics reaches the
    /// same closure (patterns, origins, affected sets, DAG edges) as
    /// generalizing everything from scratch.
    #[test]
    fn extend_matches_full_fixpoint_by_content() {
        use xia_xpath::ValueKind::Str;
        let old = [
            ("SDOC", "/Security/Symbol"),
            ("SDOC", "/Security/SecInfo/*/Sector"),
            ("C", "/r/a/x"),
        ];
        let new = [
            ("SDOC", "/Security/Yield"),
            ("C", "/r/b/x"),
            ("C", "/r/a/y"),
        ];
        // Incremental: generalize the old basics, then insert + extend.
        let mut inc = CandidateSet::new();
        for (i, (coll, path)) in old.iter().enumerate() {
            let id = inc.insert(coll, lp(path), Str, CandOrigin::Basic);
            inc.get_mut(id).affected.insert(i);
        }
        generalize_set_fast(&mut inc, &Telemetry::off(), &EventJournal::off());
        let mut new_ids = Vec::new();
        for (i, (coll, path)) in new.iter().enumerate() {
            let id = inc.insert(coll, lp(path), Str, CandOrigin::Basic);
            inc.get_mut(id).affected.insert(old.len() + i);
            new_ids.push(id);
        }
        generalize_set_extend(&mut inc, &new_ids, &Telemetry::off(), &EventJournal::off());
        // Full: everything from scratch.
        let mut full = CandidateSet::new();
        for (i, (coll, path)) in old.iter().chain(new.iter()).enumerate() {
            let id = full.insert(coll, lp(path), Str, CandOrigin::Basic);
            full.get_mut(id).affected.insert(i);
        }
        generalize_set_fast(&mut full, &Telemetry::off(), &EventJournal::off());
        assert_eq!(content_signature(&inc), content_signature(&full));
    }

    /// Extending with an already-present pattern (a duplicate basic whose
    /// statements merged into the existing candidate) refreshes the
    /// affected sets of covering generalizations.
    #[test]
    fn extend_refreshes_affected_of_existing_generalizations() {
        use xia_xpath::ValueKind::Str;
        let mut set = CandidateSet::new();
        let a = set.insert("C", lp("/r/a/x"), Str, CandOrigin::Basic);
        let b = set.insert("C", lp("/r/b/x"), Str, CandOrigin::Basic);
        set.get_mut(a).affected.insert(0);
        set.get_mut(b).affected.insert(1);
        let created = generalize_set_fast(&mut set, &Telemetry::off(), &EventJournal::off());
        assert_eq!(created.len(), 1);
        let g = created[0];
        // A later statement re-produces /r/a/x: insert merges affected.
        let a2 = set.insert("C", lp("/r/a/x"), Str, CandOrigin::Basic);
        assert_eq!(a2, a);
        set.get_mut(a).affected.insert(2);
        generalize_set_extend(&mut set, &[], &Telemetry::off(), &EventJournal::off());
        assert!(
            set.get(g).affected.contains(2),
            "generalization must pick up the merged statement"
        );
    }

    /// The fast path's accounting: bucketing skips cross-kind pairs, the
    /// memo fires on repeated pattern pairs, and the fast path visits
    /// strictly fewer pairs than the naive loop on a multi-kind workload.
    #[test]
    fn fast_path_counters_reflect_skipped_work() {
        use xia_xpath::ValueKind::{Num, Str};
        let seeds = [
            ("C1", "/r/a/x", Str),
            ("C1", "/r/b/x", Str),
            ("C1", "/r/c/x", Str),
            ("C1", "/r/a/y", Num),
            ("C2", "/r/b/y", Num),
            ("C2", "/r/c/y", Num),
        ];
        let build = || {
            let mut set = CandidateSet::new();
            for (coll, path, kind) in seeds {
                set.insert(coll, lp(path), kind, CandOrigin::Basic);
            }
            set
        };
        let tn = Telemetry::new();
        generalize_set_naive(&mut build(), &tn, &EventJournal::off());
        let tf = Telemetry::new();
        generalize_set_fast(&mut build(), &tf, &EventJournal::off());
        let naive_visits = tn.get(Counter::GeneralizePairsVisited);
        let fast_visits = tf.get(Counter::GeneralizePairsVisited);
        assert!(naive_visits > 0 && fast_visits > 0);
        assert!(
            fast_visits < naive_visits,
            "fast {fast_visits} !< naive {naive_visits}"
        );
        assert!(
            tf.get(Counter::PairsSkippedBucket) > 0,
            "multi-kind workload must skip cross-bucket pairs"
        );
        // Naive never reports fast-path counters.
        assert_eq!(tn.get(Counter::PairsSkippedBucket), 0);
        assert_eq!(tn.get(Counter::PairsMemoHits), 0);
    }
}
