//! Candidate generalization — the paper's Algorithm 1 (`generalizeStep`)
//! and Table II (`advanceStep` rules), applied to fixpoint.
//!
//! Generalizing a pair of linear patterns walks both step lists in
//! parallel, emitting for each consumed pair a step whose name test is the
//! common name (or `*`) and whose axis is `//` if either input axis is
//! `//` (the paper's `genAxis`). The `advanceStep` rules govern pointer
//! movement:
//!
//! 1. both at their last step → done (after the Rule 0 rewrite);
//! 2. / 3. one side at its last step → the other side jumps to *its* last
//!    step, recording the skipped middle steps as a `/*` step;
//! 4. both in the middle → three alternatives: advance both, or align the
//!    current step of one side with its first re-occurrence in the other
//!    side's remainder (this handles repeated node names, e.g.
//!    `/a/b/d` ⊔ `/a/d/b/d` → `{/a//d, /a//b/d}`);
//! 0. (rewrite) middle `/*` steps are folded into a `//` axis on the next
//!    step: `/a/*/b` → `/a//b`.
//!
//! A pair is only generalized if compatible: same collection and same
//! value kind (the paper's type/namespace compatibility check; candidate
//! C3 of Table I cannot generalize with C1/C2 because it is numerical).

use crate::candidate::{CandOrigin, CandidateSet};
use std::collections::BTreeSet;
use xia_xpath::{contain, Axis, LinearPath, LinearStep, NameTest};

/// `genAxis` from Algorithm 1: descendant if either input is descendant.
fn gen_axis(a: Axis, b: Axis) -> Axis {
    if a == Axis::Descendant || b == Axis::Descendant {
        Axis::Descendant
    } else {
        Axis::Child
    }
}

/// Generalized step for a consumed pair of steps.
fn gen_node(a: &LinearStep, b: &LinearStep) -> LinearStep {
    let test = if a.test == b.test {
        a.test.clone()
    } else {
        NameTest::Wildcard
    };
    LinearStep {
        axis: gen_axis(a.axis, b.axis),
        test,
    }
}

/// A `/*` filler step recording skipped middle steps.
fn filler() -> LinearStep {
    LinearStep {
        axis: Axis::Child,
        test: NameTest::Wildcard,
    }
}

/// Generalizes a pair of linear patterns, returning every generalized
/// pattern the paper's rules produce (deduplicated, Rule 0 applied). The
/// result may be empty only for degenerate (empty) inputs.
pub fn generalize_pair(p: &LinearPath, q: &LinearPath) -> Vec<LinearPath> {
    if p.is_empty() || q.is_empty() {
        return Vec::new();
    }
    let mut results: BTreeSet<LinearPath> = BTreeSet::new();
    // Recursion depth is bounded by |p| + |q|; the branching of Rule 4 is
    // bounded by first-occurrence alignment, so the state space is small.
    step(&mut results, Vec::new(), &p.steps, 0, &q.steps, 0);
    results.into_iter().collect()
}

/// `generalizeStep` + `advanceStep`, fused. `i`/`j` index the next
/// unconsumed steps of `p`/`q`.
fn step(
    out: &mut BTreeSet<LinearPath>,
    gen: Vec<LinearStep>,
    p: &[LinearStep],
    i: usize,
    q: &[LinearStep],
    j: usize,
) {
    let last_p = i + 1 == p.len();
    let last_q = j + 1 == q.len();
    match (last_p, last_q) {
        // Rule 1 (via Algorithm 1 line 4-12): consume the two last steps
        // together, rewrite, emit.
        (true, true) => {
            let mut gen = gen;
            gen.push(gen_node(&p[i], &q[j]));
            out.insert(LinearPath::new(gen).rewrite_rule0());
        }
        // Rules 2/3: a last step can only generalize with another last
        // step; fast-forward the non-last side to its last step, recording
        // the skipped steps as a `/*` filler.
        (true, false) => {
            let mut gen = gen;
            gen.push(filler());
            step(out, gen, p, i, q, q.len() - 1);
        }
        (false, true) => {
            let mut gen = gen;
            gen.push(filler());
            step(out, gen, p, p.len() - 1, q, j);
        }
        // Rule 4: both middle steps.
        (false, false) => {
            // (1) Consume the pair and advance both.
            let mut g1 = gen.clone();
            g1.push(gen_node(&p[i], &q[j]));
            step(out, g1, p, i + 1, q, j + 1);
            // (2) Align q's current step with its first re-occurrence in
            // p's remainder (skipping p steps → filler).
            if let Some(k) = find_occurrence(p, i + 1, &q[j].test) {
                let mut g2 = gen.clone();
                g2.push(filler());
                step(out, g2, p, k, q, j);
            }
            // (3) Symmetric.
            if let Some(k) = find_occurrence(q, j + 1, &p[i].test) {
                let mut g3 = gen;
                g3.push(filler());
                step(out, g3, p, i, q, k);
            }
        }
    }
}

fn find_occurrence(steps: &[LinearStep], from: usize, test: &NameTest) -> Option<usize> {
    (from..steps.len()).find(|&k| steps[k].test == *test)
}

/// Applies pairwise generalization over a candidate set until no new
/// pattern appears (the paper's fixpoint), inserting generalized
/// candidates and recording DAG edges `generalized → generalized-from`.
///
/// Two candidates are compatible iff they live on the same collection and
/// have the same value kind. Generalized results that are equivalent to an
/// input pattern are not re-inserted (no self-edges); results are verified
/// to cover both inputs (a safety net around the rule engine).
///
/// Returns the ids of the newly created generalized candidates.
pub fn generalize_set(set: &mut CandidateSet) -> Vec<crate::candidate::CandId> {
    let mut created = Vec::new();
    let mut frontier: Vec<crate::candidate::CandId> = set.ids().collect();
    let mut all: Vec<crate::candidate::CandId> = frontier.clone();
    while !frontier.is_empty() {
        let mut new_ids = Vec::new();
        for &a in &frontier {
            for &b in &all {
                if a == b {
                    continue;
                }
                let (ca, cb) = (set.get(a), set.get(b));
                if ca.collection != cb.collection || ca.kind != cb.kind {
                    continue;
                }
                let (pa, pb, coll, kind) = (
                    ca.pattern.clone(),
                    cb.pattern.clone(),
                    ca.collection.clone(),
                    ca.kind,
                );
                for g in generalize_pair(&pa, &pb) {
                    // Safety: a generalization must cover both inputs.
                    if !contain::covers(&g, &pa) || !contain::covers(&g, &pb) {
                        continue;
                    }
                    // Skip results equivalent to an input (no new pattern).
                    if g == pa || g == pb {
                        let target = if g == pa { a } else { b };
                        let other = if g == pa { b } else { a };
                        set.add_edge(target, other);
                        continue;
                    }
                    let existing = set.lookup(&coll, &g, kind);
                    let gid = set.insert(&coll, g, kind, CandOrigin::Generalized);
                    set.add_edge(gid, a);
                    set.add_edge(gid, b);
                    if existing.is_none() {
                        new_ids.push(gid);
                        created.push(gid);
                    }
                }
            }
        }
        all.extend(new_ids.iter().copied());
        frontier = new_ids;
    }
    // Affected sets of generalized candidates: union over the basic
    // candidates they cover (statements that produced covered patterns).
    let basics = set.basic_ids();
    for &gid in &created {
        let gp = set.get(gid).pattern.clone();
        let mut affected = set.get(gid).affected.clone();
        for &b in &basics {
            let cb = set.get(b);
            if cb.collection == set.get(gid).collection
                && cb.kind == set.get(gid).kind
                && contain::covers(&gp, &cb.pattern)
            {
                affected.union_with(&cb.affected.clone());
            }
        }
        set.get_mut(gid).affected = affected;
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandOrigin, CandidateSet};
    use xia_xpath::parse_linear_path;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).unwrap()
    }

    fn gen(a: &str, b: &str) -> Vec<String> {
        generalize_pair(&lp(a), &lp(b))
            .into_iter()
            .map(|p| p.to_string())
            .collect()
    }

    #[test]
    fn paper_example_c1_c2() {
        // /Security/Symbol ⊔ /Security/SecInfo/*/Sector → /Security//*
        let out = gen("/Security/Symbol", "/Security/SecInfo/*/Sector");
        assert_eq!(out, vec!["/Security//*"]);
    }

    #[test]
    fn paper_example_reoccurrence() {
        // /a/b/d ⊔ /a/d/b/d → {/a//d, /a//b/d} (paper Section V).
        let out = gen("/a/b/d", "/a/d/b/d");
        assert!(out.contains(&"/a//d".to_string()), "{out:?}");
        assert!(out.contains(&"/a//b/d".to_string()), "{out:?}");
    }

    #[test]
    fn identical_paths_generalize_to_themselves() {
        assert_eq!(gen("/a/b/c", "/a/b/c"), vec!["/a/b/c"]);
    }

    #[test]
    fn same_parent_different_leaves() {
        assert_eq!(
            gen("/Security/Symbol", "/Security/Yield"),
            vec!["/Security/*"]
        );
    }

    #[test]
    fn descendant_axis_propagates() {
        // genAxis: // wins.
        let out = gen("/a//b", "/a/b");
        assert_eq!(out, vec!["/a//b"]);
    }

    #[test]
    fn different_roots_generalize_to_descendant_leaf() {
        // The generalized middle `*` is folded by Rule 0: /*/x → //x.
        let out = gen("/a/x", "/b/x");
        assert_eq!(out, vec!["//x"]);
    }

    #[test]
    fn different_lengths_produce_descendant_target() {
        let out = gen("/a/b", "/a/x/y/b");
        assert!(out.contains(&"/a//b".to_string()), "{out:?}");
    }

    #[test]
    fn results_cover_both_inputs_exhaustive() {
        let samples = [
            "/a/b",
            "/a/b/c",
            "/a//c",
            "/a/*/c",
            "/x/y",
            "/a/b/d",
            "/a/d/b/d",
            "/Security/SecInfo/StockInfo/Sector",
            "/Security/Symbol",
        ];
        for a in &samples {
            for b in &samples {
                let (pa, pb) = (lp(a), lp(b));
                for g in generalize_pair(&pa, &pb) {
                    assert!(
                        contain::covers(&g, &pa) && contain::covers(&g, &pb),
                        "{g} does not cover {a} ⊔ {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixpoint_expands_set_and_builds_dag() {
        let mut set = CandidateSet::new();
        let c1 = set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        let c2 = set.insert(
            "SDOC",
            lp("/Security/SecInfo/*/Sector"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        // C3 is numerical: must not generalize with C1/C2 (paper Table I).
        let c3 = set.insert(
            "SDOC",
            lp("/Security/Yield"),
            xia_xpath::ValueKind::Num,
            CandOrigin::Basic,
        );
        set.get_mut(c1).affected.insert(0);
        set.get_mut(c2).affected.insert(1);
        set.get_mut(c3).affected.insert(1);
        let created = generalize_set(&mut set);
        assert_eq!(created.len(), 1);
        let g = set.get(created[0]);
        assert_eq!(g.pattern.to_string(), "/Security//*");
        assert_eq!(g.kind, xia_xpath::ValueKind::Str);
        let mut kids = g.children.clone();
        kids.sort();
        assert_eq!(kids, vec![c1, c2]);
        // Affected set of the generalization = union of its basics'.
        assert!(g.affected.contains(0) && g.affected.contains(1));
        // The numeric candidate remains a root (nothing generalized it).
        assert!(set.get(c3).parents.is_empty());
    }

    #[test]
    fn cross_collection_candidates_do_not_generalize() {
        let mut set = CandidateSet::new();
        set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        set.insert(
            "ODOC",
            lp("/Order/Symbol"),
            xia_xpath::ValueKind::Str,
            CandOrigin::Basic,
        );
        let created = generalize_set(&mut set);
        assert!(created.is_empty());
    }

    #[test]
    fn fixpoint_terminates_on_many_siblings() {
        let mut set = CandidateSet::new();
        for leaf in ["a", "b", "c", "d", "e"] {
            set.insert(
                "C",
                lp(&format!("/root/mid/{leaf}")),
                xia_xpath::ValueKind::Str,
                CandOrigin::Basic,
            );
        }
        let created = generalize_set(&mut set);
        // All pairs generalize to the single /root/mid/*.
        assert_eq!(created.len(), 1);
        assert_eq!(set.get(created[0]).pattern.to_string(), "/root/mid/*");
        assert_eq!(set.get(created[0]).children.len(), 5);
    }

    #[test]
    fn generalization_expansion_is_bounded() {
        // Mixed-shape candidates must reach a fixpoint without explosion.
        let mut set = CandidateSet::new();
        for p in ["/s/a/x", "/s/b/x", "/s/a/y", "/s/c/d/x", "/s//y", "/t/a"] {
            set.insert("C", lp(p), xia_xpath::ValueKind::Str, CandOrigin::Basic);
        }
        let created = generalize_set(&mut set);
        assert!(!created.is_empty());
        assert!(set.len() < 60, "unexpected explosion: {}", set.len());
    }
}
