//! Workload drift detection over compressed-template mass.
//!
//! The serving layer re-advises only when the observed workload's
//! *distribution* moved, not on every statement. CoPhy-style templates
//! ([`xia_xpath::template_key`]) are the natural unit: parameter
//! variations of one shape fold into one template, so drift measures a
//! change in what kinds of statements run, not in their literals.
//!
//! [`DriftTracker`] keeps a frequency-mass histogram keyed by template
//! fingerprint. At each recommendation the current histogram is
//! snapshotted as the *baseline*; afterwards,
//! [`drift`](DriftTracker::drift) is the total-variation distance between
//! the normalized current and baseline distributions — `0` when nothing
//! changed, `1` when the workloads are disjoint. Crossing a configured
//! threshold means the last recommendation was computed for a workload
//! that no longer resembles the live one.
//!
//! The tracker is a pure function of the observation sequence (FNV
//! fingerprints, insertion-ordered accumulation), so concurrent sessions
//! fed the same statements report byte-identical drift.

use std::collections::HashMap;
use xia_xpath::{fnv1a, template_key, Statement};

/// Template-mass drift detector. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct DriftTracker {
    /// Frequency mass per template fingerprint, observed so far.
    current: HashMap<u64, f64>,
    /// The histogram as of the last [`DriftTracker::rebaseline`].
    baseline: HashMap<u64, f64>,
}

impl DriftTracker {
    /// An empty tracker (empty baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one observed statement's frequency mass.
    pub fn observe(&mut self, statement: &Statement, freq: f64) {
        let fp = fnv1a(template_key(statement).as_bytes());
        *self.current.entry(fp).or_insert(0.0) += freq.max(0.0);
    }

    /// Total-variation distance between the normalized current and
    /// baseline template-mass distributions, in `[0, 1]`. An empty
    /// baseline against a non-empty current is full drift (`1`); two
    /// empty histograms are at rest (`0`).
    pub fn drift(&self) -> f64 {
        let cur_total: f64 = self.current.values().sum();
        let base_total: f64 = self.baseline.values().sum();
        match (cur_total > 0.0, base_total > 0.0) {
            (false, false) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            (true, true) => {}
        }
        // Accumulate in sorted-fingerprint order: float addition is not
        // associative and HashMap iteration order is randomly seeded, so
        // an unsorted sum would differ bit-for-bit between processes.
        let mut fps: Vec<u64> = self.current.keys().copied().collect();
        fps.extend(
            self.baseline
                .keys()
                .copied()
                .filter(|fp| !self.current.contains_key(fp)),
        );
        fps.sort_unstable();
        let mut tv = 0.0;
        for fp in fps {
            let cur = self.current.get(&fp).copied().unwrap_or(0.0);
            let base = self.baseline.get(&fp).copied().unwrap_or(0.0);
            tv += (cur / cur_total - base / base_total).abs();
        }
        (tv / 2.0).clamp(0.0, 1.0)
    }

    /// Snapshots the current histogram as the new baseline (called after
    /// each recommendation), returning drift to zero.
    pub fn rebaseline(&mut self) {
        self.baseline = self.current.clone();
    }

    /// Distinct templates observed so far.
    pub fn templates(&self) -> usize {
        self.current.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(text: &str) -> Statement {
        xia_xpath::parse_statement(text).unwrap()
    }

    #[test]
    fn fresh_tracker_is_at_rest_until_observed() {
        let mut d = DriftTracker::new();
        assert_eq!(d.drift(), 0.0);
        d.observe(
            &stmt(r#"for $s in S('C')/a where $s/b = "x" return $s"#),
            1.0,
        );
        assert_eq!(d.drift(), 1.0, "anything vs empty baseline is full drift");
        d.rebaseline();
        assert_eq!(d.drift(), 0.0);
    }

    #[test]
    fn parameter_variations_do_not_drift() {
        let mut d = DriftTracker::new();
        d.observe(
            &stmt(r#"for $s in S('C')/a where $s/b = "x" return $s"#),
            1.0,
        );
        d.rebaseline();
        for v in ["y", "z", "w"] {
            d.observe(
                &stmt(&format!(
                    r#"for $s in S('C')/a where $s/b = "{v}" return $s"#
                )),
                1.0,
            );
        }
        assert_eq!(
            d.drift(),
            0.0,
            "equality-literal variations share one template"
        );
    }

    #[test]
    fn shifting_mass_to_a_new_template_drifts_proportionally() {
        let mut d = DriftTracker::new();
        d.observe(
            &stmt(r#"for $s in S('C')/a where $s/b = "x" return $s"#),
            1.0,
        );
        d.rebaseline();
        // Equal mass on a brand-new template: current = (1/2, 1/2),
        // baseline = (1, 0) → TV = 1/2.
        d.observe(&stmt(r#"for $s in S('C')/a where $s/c = 1 return $s"#), 1.0);
        assert!((d.drift() - 0.5).abs() < 1e-12, "got {}", d.drift());
        d.rebaseline();
        assert_eq!(d.drift(), 0.0);
    }

    #[test]
    fn drift_is_deterministic_across_interleavings() {
        let a = r#"for $s in S('C')/a where $s/b = "x" return $s"#;
        let b = r#"for $s in S('C')/a where $s/c = 1 return $s"#;
        let mut d1 = DriftTracker::new();
        let mut d2 = DriftTracker::new();
        for _ in 0..3 {
            d1.observe(&stmt(a), 1.0);
            d1.observe(&stmt(b), 2.0);
        }
        for _ in 0..3 {
            d2.observe(&stmt(b), 2.0);
        }
        for _ in 0..3 {
            d2.observe(&stmt(a), 1.0);
        }
        assert_eq!(d1.drift().to_bits(), d2.drift().to_bits());
        assert_eq!(d1.templates(), 2);
    }

    #[test]
    fn negative_frequencies_are_clamped() {
        let mut d = DriftTracker::new();
        d.observe(
            &stmt(r#"for $s in S('C')/a where $s/b = "x" return $s"#),
            -5.0,
        );
        assert_eq!(d.drift(), 0.0, "clamped mass must not poison the totals");
    }
}
