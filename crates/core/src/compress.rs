//! CoPhy-style workload compression: cluster statements into weighted
//! cost-identity templates.
//!
//! The advisor's what-if loop is (statements × configurations) optimizer
//! calls; on 100k-statement workloads that product is the binding
//! constraint. CoPhy's observation is that production workloads are
//! template-shaped: most statements are parameter variations of a few
//! hundred shapes, and the cost model cannot tell those variations apart
//! (see [`xia_xpath::template_key`] for exactly what it can and cannot
//! distinguish). Compression costs one representative per template and
//! multiplies by the template's accumulated frequency — exact weight
//! bookkeeping, not sampling, so the total benefit of every configuration
//! is preserved and the recommendation is unchanged.
//!
//! Compression runs on the coordinator thread before candidate
//! enumeration; it is deterministic in the workload alone (first-occurrence
//! template order), so compressed runs stay byte-identical across
//! `--jobs` values.

use std::collections::HashMap;
use xia_obs::{Counter, Event, EventJournal, Telemetry};
use xia_workloads::Workload;
use xia_xpath::{fnv1a, template_key};

/// One cluster of cost-identical statements.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTemplate {
    /// Canonical template key (see [`xia_xpath::template_key`]).
    pub key: String,
    /// FNV-1a fingerprint of the key (content-addressed identity; also
    /// the fault-stream salt of every member statement).
    pub fingerprint: u64,
    /// Index of the representative statement in the *original* workload.
    pub representative: usize,
    /// How many original statements folded into this template.
    pub members: u64,
    /// Accumulated frequency weight (`Σ freq` over members, in
    /// first-occurrence member order).
    pub weight: f64,
}

/// A workload compressed into weighted templates.
#[derive(Debug, Clone)]
pub struct CompressedWorkload {
    /// One entry per template: the representative statement with the
    /// template's accumulated weight as its frequency. Feed this to the
    /// advisor in place of the original workload.
    pub workload: Workload,
    /// Per-template bookkeeping, in first-occurrence order (matching
    /// `workload`'s entry order).
    pub templates: Vec<WorkloadTemplate>,
    /// Statement count of the original workload.
    pub original_statements: usize,
}

impl CompressedWorkload {
    /// `original_statements / templates` — how much costing work
    /// compression saved.
    pub fn ratio(&self) -> f64 {
        if self.templates.is_empty() {
            1.0
        } else {
            self.original_statements as f64 / self.templates.len() as f64
        }
    }
}

/// Sums per-template member counts and weights into workload totals.
/// Member counts use saturating `u64` math (like the knapsack size
/// guards): a hostile or synthetic workload whose counts sum past
/// `u64::MAX` must clamp, not wrap — a wrapped total would silently
/// mis-weight every template downstream.
pub fn compute_weights(templates: &[WorkloadTemplate]) -> (u64, f64) {
    let mut members: u64 = 0;
    let mut weight = 0.0_f64;
    for t in templates {
        members = members.saturating_add(t.members);
        weight += t.weight;
    }
    (members, weight)
}

/// Compresses a workload into weighted cost-identity templates.
///
/// Statements are clustered by [`template_key`]; each cluster keeps its
/// first member as the representative and accumulates the members'
/// frequencies (exact bookkeeping — weights are added in member order, so
/// the result is a pure function of the workload). Emits the
/// `templates_built` / `stmts_compressed` counters and a
/// [`Event::WorkloadCompressed`] journal line.
pub fn compress_workload(
    w: &Workload,
    telemetry: &Telemetry,
    journal: &EventJournal,
) -> CompressedWorkload {
    let mut by_key: HashMap<String, usize> = HashMap::new();
    let mut templates: Vec<WorkloadTemplate> = Vec::new();
    for (si, entry) in w.entries().iter().enumerate() {
        let key = template_key(&entry.statement);
        match by_key.get(&key) {
            Some(&ti) => {
                let t = &mut templates[ti];
                // Saturating, not wrapping: see `compute_weights`.
                t.members = t.members.saturating_add(1);
                t.weight += entry.freq;
            }
            None => {
                let fingerprint = fnv1a(key.as_bytes());
                by_key.insert(key.clone(), templates.len());
                templates.push(WorkloadTemplate {
                    key,
                    fingerprint,
                    representative: si,
                    members: 1,
                    weight: entry.freq,
                });
            }
        }
    }
    let mut compressed = Workload::new();
    for t in &templates {
        let rep = &w.entries()[t.representative];
        compressed.push_statement(rep.statement.clone(), t.weight, rep.text.clone());
    }
    let folded = w.len().saturating_sub(templates.len()) as u64;
    telemetry.add(Counter::TemplatesBuilt, templates.len() as u64);
    telemetry.add(Counter::StmtsCompressed, folded);
    journal.emit(|| Event::WorkloadCompressed {
        statements: w.len() as u64,
        templates: templates.len() as u64,
    });
    CompressedWorkload {
        workload: compressed,
        templates,
        original_statements: w.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(texts: &[&str]) -> Workload {
        Workload::from_texts(texts.iter().copied()).unwrap()
    }

    #[test]
    fn parameter_variations_fold_into_one_template() {
        let w = workload(&[
            r#"for $s in S('C')/a where $s/b = "x" return $s"#,
            r#"for $s in S('C')/a where $s/b = "y" return $s"#,
            r#"for $s in S('C')/a where $s/b = "z" return $s"#,
            r#"for $s in S('C')/a where $s/c = 1 return $s"#,
        ]);
        let t = Telemetry::new();
        let c = compress_workload(&w, &t, &EventJournal::off());
        assert_eq!(c.templates.len(), 2);
        assert_eq!(c.workload.len(), 2);
        assert_eq!(c.original_statements, 4);
        assert_eq!(c.templates[0].members, 3);
        assert_eq!(c.templates[0].weight, 3.0);
        assert_eq!(c.templates[0].representative, 0);
        assert_eq!(c.workload.entries()[0].freq, 3.0);
        assert_eq!(t.get(Counter::TemplatesBuilt), 2);
        assert_eq!(t.get(Counter::StmtsCompressed), 2);
        assert!((c.ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weights_accumulate_frequencies_exactly() {
        let mut w = Workload::new();
        w.push_with_freq(r#"for $s in S('C')/a where $s/b = "x" return $s"#, 2.5)
            .unwrap();
        w.push_with_freq(r#"for $s in S('C')/a where $s/b = "y" return $s"#, 4.0)
            .unwrap();
        let c = compress_workload(&w, &Telemetry::off(), &EventJournal::off());
        assert_eq!(c.templates.len(), 1);
        assert_eq!(c.templates[0].weight, 6.5);
        let (members, weight) = compute_weights(&c.templates);
        assert_eq!(members, 2);
        assert_eq!(weight, 6.5);
    }

    #[test]
    fn compression_is_first_occurrence_ordered_and_deterministic() {
        let w = workload(&[
            r#"for $s in S('C')/z where $s/b = 1 return $s"#,
            r#"for $s in S('C')/a where $s/b = "x" return $s"#,
            r#"for $s in S('C')/z where $s/b = 2 return $s"#,
        ]);
        let a = compress_workload(&w, &Telemetry::off(), &EventJournal::off());
        let b = compress_workload(&w, &Telemetry::off(), &EventJournal::off());
        assert_eq!(a.templates, b.templates);
        // /z first (numeric *equality* collapses), then /a.
        assert_eq!(a.templates[0].representative, 0);
        assert_eq!(a.templates[0].members, 2);
        assert_eq!(a.templates[1].representative, 1);
    }

    #[test]
    fn numeric_range_templates_stay_distinct() {
        let w = workload(&[
            "for $s in S('C')/a where $s/b > 1 return $s",
            "for $s in S('C')/a where $s/b > 2 return $s",
        ]);
        let c = compress_workload(&w, &Telemetry::off(), &EventJournal::off());
        assert_eq!(
            c.templates.len(),
            2,
            "histogram-driven literals must not collapse"
        );
    }

    #[test]
    fn compute_weights_saturates_at_u64_extremes() {
        let t = |members: u64| WorkloadTemplate {
            key: String::new(),
            fingerprint: 0,
            representative: 0,
            members,
            weight: 1.0,
        };
        let (members, weight) = compute_weights(&[t(u64::MAX), t(u64::MAX), t(7)]);
        assert_eq!(members, u64::MAX, "must clamp, not wrap");
        assert_eq!(weight, 3.0);
        let (zero, _) = compute_weights(&[]);
        assert_eq!(zero, 0);
    }

    #[test]
    fn journal_records_compression() {
        let w = workload(&[
            r#"for $s in S('C')/a where $s/b = "x" return $s"#,
            r#"for $s in S('C')/a where $s/b = "y" return $s"#,
        ]);
        let j = EventJournal::new();
        compress_workload(&w, &Telemetry::off(), &j);
        let text = j.to_jsonl();
        assert!(text.contains("workload_compressed"), "{text}");
        assert!(text.contains("\"statements\":2"), "{text}");
        assert!(text.contains("\"templates\":1"), "{text}");
    }
}
