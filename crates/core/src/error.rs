//! Unified advisor error hierarchy.
//!
//! Every fallible advisor entry point returns [`XiaError`], which wraps
//! the layer-specific errors (`ParseError`, `XmlError`, `PersistError`,
//! `ExecError`, injected faults) and supports context chains: callers
//! attach what they were doing with [`XiaError::context`], and consumers
//! (the `xia` CLI) walk [`XiaError::chain`] to print the full story.
//!
//! Statement-level problems that the advisor survives are *not* errors:
//! they become [`StatementIssue`] diagnostics on the `Recommendation`
//! (see `benefit::BenefitEvaluator`). `XiaError` is reserved for the
//! cases where no useful answer exists at all.

use std::fmt;
use xia_fault::InjectedFault;
use xia_optimizer::ExecError;
use xia_storage::PersistError;
use xia_xml::XmlError;
use xia_xpath::ParseError;

/// Where in the pipeline a quarantined statement failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueStage {
    /// The statement text did not parse.
    Parse,
    /// The statement parsed but could not be costed (missing collection,
    /// stats unavailable, optimizer failure).
    Cost,
}

impl fmt::Display for IssueStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueStage::Parse => "parse",
            IssueStage::Cost => "cost",
        })
    }
}

/// A per-statement diagnostic for a quarantined workload statement. The
/// advisor keeps going over the remaining statements and reports these in
/// the `Recommendation` instead of aborting.
#[derive(Debug, Clone)]
pub struct StatementIssue {
    /// Index of the statement in the workload (or input order for
    /// parse-stage issues collected before a workload exists).
    pub index: usize,
    /// The statement text (possibly truncated by the producer).
    pub text: String,
    /// Pipeline stage that failed.
    pub stage: IssueStage,
    /// Human-readable cause.
    pub detail: String,
}

impl fmt::Display for StatementIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "statement #{} quarantined at {} stage: {}",
            self.index + 1,
            self.stage,
            self.detail
        )
    }
}

/// The advisor's unified error type.
#[derive(Debug)]
pub enum XiaError {
    /// A statement or path failed to parse.
    Parse(ParseError),
    /// An XML document failed to parse.
    Xml(XmlError),
    /// Persisted-database load/save failure (I/O, format, corruption).
    Persist(PersistError),
    /// Plan execution failure.
    Exec(ExecError),
    /// A fault fired by the xia-fault injector surfaced as an error.
    Injected(InjectedFault),
    /// The workload contains no statements (nothing to advise on).
    EmptyWorkload,
    /// Every statement in the workload was quarantined; no recommendation
    /// can be based on anything.
    AllStatementsQuarantined {
        /// How many statements were quarantined.
        total: usize,
    },
    /// A statement referenced a collection the database does not have.
    UnknownCollection(String),
    /// Strict mode was requested and the run would have degraded.
    StrictDegradation {
        /// Statements quarantined at cost stage.
        quarantined: usize,
        /// Benefit evaluations answered heuristically.
        fallbacks: u64,
    },
    /// An internal invariant failed — a bug, not a user problem.
    Internal(String),
    /// A wrapped error with one line of caller context.
    Context {
        /// What the caller was doing.
        context: String,
        /// The underlying error.
        source: Box<XiaError>,
    },
}

impl fmt::Display for XiaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XiaError::Parse(e) => write!(f, "parse error: {e}"),
            XiaError::Xml(e) => write!(f, "xml error: {e}"),
            XiaError::Persist(e) => write!(f, "{e}"),
            XiaError::Exec(e) => write!(f, "execution error: {e}"),
            XiaError::Injected(e) => write!(f, "{e}"),
            XiaError::EmptyWorkload => write!(f, "workload is empty"),
            XiaError::AllStatementsQuarantined { total } => write!(
                f,
                "all {total} workload statements were quarantined; nothing to advise on"
            ),
            XiaError::UnknownCollection(name) => {
                write!(f, "unknown collection `{name}`")
            }
            XiaError::StrictDegradation {
                quarantined,
                fallbacks,
            } => write!(
                f,
                "strict mode: run degraded ({quarantined} statements quarantined, \
                 {fallbacks} cost fallbacks)"
            ),
            XiaError::Internal(m) => write!(f, "internal error: {m}"),
            XiaError::Context { context, .. } => write!(f, "{context}"),
        }
    }
}

impl std::error::Error for XiaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XiaError::Parse(e) => Some(e),
            XiaError::Xml(e) => Some(e),
            XiaError::Persist(e) => Some(e),
            XiaError::Exec(e) => Some(e),
            XiaError::Injected(e) => Some(e),
            XiaError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl XiaError {
    /// Wraps this error with one line of context (outermost first when
    /// printed via [`XiaError::chain`]).
    pub fn context(self, context: impl Into<String>) -> XiaError {
        XiaError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The error's root cause (unwraps all context layers).
    pub fn root(&self) -> &XiaError {
        match self {
            XiaError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// The full context chain, outermost message first, ending at the
    /// root cause's own message.
    pub fn chain(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            out.push(cur.to_string());
            match cur {
                XiaError::Context { source, .. } => cur = source.as_ref(),
                _ => break,
            }
        }
        // Layer-wrapped foreign errors already render their source in
        // Display; nothing further to walk.
        out
    }
}

impl From<ParseError> for XiaError {
    fn from(e: ParseError) -> Self {
        XiaError::Parse(e)
    }
}

impl From<XmlError> for XiaError {
    fn from(e: XmlError) -> Self {
        XiaError::Xml(e)
    }
}

impl From<PersistError> for XiaError {
    fn from(e: PersistError) -> Self {
        XiaError::Persist(e)
    }
}

impl From<ExecError> for XiaError {
    fn from(e: ExecError) -> Self {
        XiaError::Exec(e)
    }
}

impl From<InjectedFault> for XiaError {
    fn from(e: InjectedFault) -> Self {
        XiaError::Injected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chain_prints_outermost_first() {
        let e = XiaError::EmptyWorkload
            .context("while preparing candidates")
            .context("while advising on database `db.xiadb`");
        let chain = e.chain();
        assert_eq!(chain.len(), 3);
        assert!(chain[0].contains("advising"));
        assert!(chain[1].contains("preparing"));
        assert!(chain[2].contains("empty"));
        assert!(matches!(e.root(), XiaError::EmptyWorkload));
    }

    #[test]
    fn sources_are_walkable() {
        use std::error::Error as _;
        let inner = XiaError::UnknownCollection("X".into());
        let e = inner.context("loading");
        assert!(e.source().is_some());
    }

    #[test]
    fn statement_issue_displays_one_based() {
        let i = StatementIssue {
            index: 0,
            text: "bad".into(),
            stage: IssueStage::Parse,
            detail: "unexpected token".into(),
        };
        let s = i.to_string();
        assert!(s.contains("#1"), "{s}");
        assert!(s.contains("parse stage"), "{s}");
    }
}
