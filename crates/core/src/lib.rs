//! # xia-advisor
//!
//! An **XML Index Advisor with tight optimizer coupling** — a from-scratch
//! Rust reproduction of Elghandour et al., ICDE 2008.
//!
//! Given an XML [`Database`](xia_storage::Database), a query/update
//! [`Workload`](xia_workloads::Workload), and a disk-space budget, the
//! advisor recommends the set of partial XML value indexes (linear XPath
//! index patterns) that maximizes the estimated workload benefit.
//!
//! The pipeline mirrors the paper's architecture (its Fig. 1):
//!
//! 1. **Candidate enumeration** ([`enumerate`]) — for every workload
//!    statement, the query optimizer's *Enumerate Indexes* mode reports the
//!    rewritten patterns that its index matching matched against the
//!    universal `//*` virtual index. These are the *basic candidates*.
//! 2. **Candidate generalization** ([`generalize`]) — pairwise
//!    generalization (the paper's Algorithm 1 + Table II rules) expands the
//!    set with patterns like `/Security//*` that can serve multiple queries
//!    and unseen future queries; a DAG records which candidates each
//!    generalized index covers.
//! 3. **Configuration search** ([`search`]) — five algorithms over the 0/1
//!    knapsack of candidates: plain greedy, greedy with the paper's
//!    heuristics, top-down lite, top-down full, and dynamic programming.
//!    Benefit queries go through [`benefit::BenefitEvaluator`], which
//!    implements the paper's affected-set + sub-configuration + cache
//!    machinery to minimize *Evaluate Indexes* optimizer calls.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub mod advisor;
pub mod benefit;
pub mod candidate;
pub mod compress;
pub mod drift;
pub mod enumerate;
pub mod error;
pub mod generalize;
pub mod report;
pub mod runctl;
pub mod search;
pub mod session;

pub use advisor::{Advisor, AdvisorParams, PartialRecommendation, Recommendation, SearchAlgorithm};
pub use benefit::{BenefitEvaluator, WhatIfBudget};
pub use candidate::{CandId, Candidate, CandidateSet, StmtSet};
pub use compress::{compress_workload, compute_weights, CompressedWorkload, WorkloadTemplate};
pub use drift::DriftTracker;
pub use enumerate::{
    enumerate_candidates, enumerate_candidates_into, enumerate_candidates_traced, size_candidates,
    size_candidates_ids, size_candidates_traced,
};
pub use error::{IssueStage, StatementIssue, XiaError};
pub use generalize::{
    generalize_pair, generalize_set, generalize_set_extend, generalize_set_fast,
    generalize_set_naive,
};
pub use report::TuningReport;
pub use runctl::{
    candidate_digest, load_checkpoint, GovernorRung, RunController, StopReason, WarmCostStore,
};
pub use session::TuningSession;
