//! Candidate indexes and the candidate set.

use std::collections::HashMap;
use std::fmt;
use xia_xpath::{LinearPath, ValueKind};

/// Identifier of a candidate within a [`CandidateSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandId(pub u32);

impl CandId {
    /// Raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of workload-statement indices, stored as a bitmap — the paper's
/// *affected set* (Section VI-C).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtSet {
    words: Vec<u64>,
}

impl StmtSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a statement index.
    pub fn insert(&mut self, idx: usize) {
        let w = idx / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (idx % 64);
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &StmtSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Whether the intersection is non-empty.
    pub fn overlaps(&self, other: &StmtSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// Whether `other` is a subset of `self`.
    pub fn is_superset(&self, other: &StmtSet) -> bool {
        for (i, &b) in other.words.iter().enumerate() {
            let a = self.words.get(i).copied().unwrap_or(0);
            if b & !a != 0 {
                return false;
            }
        }
        true
    }
}

/// How a candidate came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandOrigin {
    /// Enumerated by the optimizer for a workload statement.
    Basic,
    /// Produced by the generalization algorithm.
    Generalized,
}

/// A candidate index.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Id within the candidate set.
    pub id: CandId,
    /// Collection (XML column) the index would be created on.
    pub collection: String,
    /// The linear XPath index pattern.
    pub pattern: LinearPath,
    /// Key type.
    pub kind: ValueKind,
    /// Basic or generalized.
    pub origin: CandOrigin,
    /// Estimated size in bytes (the knapsack weight).
    pub size: u64,
    /// Statements whose basic patterns this candidate covers — the paper's
    /// affected set.
    pub affected: StmtSet,
    /// DAG children: the candidates this one directly generalizes.
    pub children: Vec<CandId>,
    /// DAG parents: generalizations of this candidate.
    pub parents: Vec<CandId>,
}

impl Candidate {
    /// Whether the candidate pattern is general (has `//` or `*`).
    pub fn is_general_pattern(&self) -> bool {
        self.pattern.is_general()
    }

    /// Key used for deduplication. Structural (the pattern itself, not its
    /// rendered text): hashing rides the precomputed path signature.
    pub fn key(&self) -> (String, LinearPath, ValueKind) {
        (self.collection.clone(), self.pattern.clone(), self.kind)
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {} size={}",
            self.collection,
            self.pattern,
            self.kind,
            match self.origin {
                CandOrigin::Basic => "basic",
                CandOrigin::Generalized => "general",
            },
            self.size
        )
    }
}

/// The candidate set: basic candidates from enumeration plus generalized
/// candidates, with the generalization DAG.
#[derive(Debug, Default, Clone)]
pub struct CandidateSet {
    cands: Vec<Candidate>,
    by_key: HashMap<(String, LinearPath, ValueKind), CandId>,
}

impl CandidateSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a candidate or merges with an existing identical one
    /// (union of affected sets; origin stays `Basic` if either was basic).
    pub fn insert(
        &mut self,
        collection: &str,
        pattern: LinearPath,
        kind: ValueKind,
        origin: CandOrigin,
    ) -> CandId {
        let key = (collection.to_string(), pattern.clone(), kind);
        if let Some(&id) = self.by_key.get(&key) {
            if origin == CandOrigin::Basic {
                self.cands[id.index()].origin = CandOrigin::Basic;
            }
            return id;
        }
        let id = CandId(self.cands.len() as u32);
        self.cands.push(Candidate {
            id,
            collection: collection.to_string(),
            pattern,
            kind,
            origin,
            size: 0,
            affected: StmtSet::new(),
            children: Vec::new(),
            parents: Vec::new(),
        });
        self.by_key.insert(key, id);
        id
    }

    /// Looks up a candidate by key.
    pub fn lookup(
        &self,
        collection: &str,
        pattern: &LinearPath,
        kind: ValueKind,
    ) -> Option<CandId> {
        self.by_key
            .get(&(collection.to_string(), pattern.clone(), kind))
            .copied()
    }

    /// Borrows a candidate.
    pub fn get(&self, id: CandId) -> &Candidate {
        &self.cands[id.index()]
    }

    /// Mutably borrows a candidate.
    pub fn get_mut(&mut self, id: CandId) -> &mut Candidate {
        &mut self.cands[id.index()]
    }

    /// Adds a DAG edge `parent → child` (idempotent).
    pub fn add_edge(&mut self, parent: CandId, child: CandId) {
        if parent == child {
            return;
        }
        if !self.cands[parent.index()].children.contains(&child) {
            self.cands[parent.index()].children.push(child);
        }
        if !self.cands[child.index()].parents.contains(&parent) {
            self.cands[child.index()].parents.push(parent);
        }
    }

    /// All candidate ids.
    pub fn ids(&self) -> impl Iterator<Item = CandId> {
        (0..self.cands.len() as u32).map(CandId)
    }

    /// All candidates.
    pub fn iter(&self) -> impl Iterator<Item = &Candidate> {
        self.cands.iter()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Ids of basic candidates.
    pub fn basic_ids(&self) -> Vec<CandId> {
        self.cands
            .iter()
            .filter(|c| c.origin == CandOrigin::Basic)
            .map(|c| c.id)
            .collect()
    }

    /// Ids of generalized candidates.
    pub fn generalized_ids(&self) -> Vec<CandId> {
        self.cands
            .iter()
            .filter(|c| c.origin == CandOrigin::Generalized)
            .map(|c| c.id)
            .collect()
    }

    /// DAG roots: candidates with no parents.
    pub fn roots(&self) -> Vec<CandId> {
        self.cands
            .iter()
            .filter(|c| c.parents.is_empty())
            .map(|c| c.id)
            .collect()
    }

    /// Total estimated size of a configuration.
    pub fn config_size(&self, config: &[CandId]) -> u64 {
        config.iter().map(|&id| self.get(id).size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_xpath::parse_linear_path;

    fn lp(s: &str) -> LinearPath {
        parse_linear_path(s).unwrap()
    }

    #[test]
    fn stmtset_basic_ops() {
        let mut a = StmtSet::new();
        a.insert(3);
        a.insert(70);
        assert!(a.contains(3));
        assert!(a.contains(70));
        assert!(!a.contains(4));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 70]);
        let mut b = StmtSet::new();
        b.insert(70);
        assert!(a.overlaps(&b));
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        b.insert(5);
        assert!(!a.is_superset(&b));
        a.union_with(&b);
        assert!(a.contains(5));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn stmtset_empty_properties() {
        let e = StmtSet::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let mut a = StmtSet::new();
        a.insert(0);
        assert!(!a.overlaps(&e));
        assert!(a.is_superset(&e));
    }

    #[test]
    fn insert_dedups_by_key() {
        let mut set = CandidateSet::new();
        let a = set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            ValueKind::Str,
            CandOrigin::Basic,
        );
        let b = set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            ValueKind::Str,
            CandOrigin::Generalized,
        );
        assert_eq!(a, b);
        assert_eq!(set.len(), 1);
        // Same pattern, different kind → different candidate.
        let c = set.insert(
            "SDOC",
            lp("/Security/Symbol"),
            ValueKind::Num,
            CandOrigin::Basic,
        );
        assert_ne!(a, c);
        // Same pattern, different collection → different candidate.
        let d = set.insert(
            "ODOC",
            lp("/Security/Symbol"),
            ValueKind::Str,
            CandOrigin::Basic,
        );
        assert_ne!(a, d);
    }

    #[test]
    fn basic_origin_wins_on_merge() {
        let mut set = CandidateSet::new();
        let a = set.insert("S", lp("/a/b"), ValueKind::Str, CandOrigin::Generalized);
        assert_eq!(set.get(a).origin, CandOrigin::Generalized);
        set.insert("S", lp("/a/b"), ValueKind::Str, CandOrigin::Basic);
        assert_eq!(set.get(a).origin, CandOrigin::Basic);
    }

    #[test]
    fn dag_edges_and_roots() {
        let mut set = CandidateSet::new();
        let child1 = set.insert("S", lp("/a/b"), ValueKind::Str, CandOrigin::Basic);
        let child2 = set.insert("S", lp("/a/c"), ValueKind::Str, CandOrigin::Basic);
        let parent = set.insert("S", lp("/a/*"), ValueKind::Str, CandOrigin::Generalized);
        set.add_edge(parent, child1);
        set.add_edge(parent, child2);
        set.add_edge(parent, child1); // idempotent
        assert_eq!(set.get(parent).children.len(), 2);
        assert_eq!(set.get(child1).parents, vec![parent]);
        assert_eq!(set.roots(), vec![parent]);
        assert_eq!(set.basic_ids(), vec![child1, child2]);
        assert_eq!(set.generalized_ids(), vec![parent]);
    }

    #[test]
    fn config_size_sums() {
        let mut set = CandidateSet::new();
        let a = set.insert("S", lp("/a/b"), ValueKind::Str, CandOrigin::Basic);
        let b = set.insert("S", lp("/a/c"), ValueKind::Str, CandOrigin::Basic);
        set.get_mut(a).size = 100;
        set.get_mut(b).size = 250;
        assert_eq!(set.config_size(&[a, b]), 350);
        assert_eq!(set.config_size(&[]), 0);
    }
}
