//! Chaos suite: the full advise loop under every injected fault class.
//!
//! The contract under fault injection (ISSUE 2 acceptance criteria): the
//! advisor either returns a degraded-but-usable recommendation or a typed
//! error — it never panics. All injectors are seeded, so every run of this
//! suite exercises the identical fault schedule.

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm, WhatIfBudget, XiaError};
use xia_fault::{FaultInjector, FaultSite};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::Workload;

const SEED: u64 = 0xC4A05;

fn db() -> Database {
    let mut db = Database::new();
    tpox::generate(&mut db, &TpoxConfig::tiny());
    db
}

fn workload() -> Workload {
    let cfg = TpoxConfig::tiny();
    Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap()
}

fn params_with(faults: FaultInjector) -> AdvisorParams {
    AdvisorParams {
        faults,
        ..AdvisorParams::default()
    }
}

#[test]
fn total_optimizer_failure_still_yields_a_recommendation() {
    // Every Evaluate-mode what-if call fails; benefit evaluation degrades
    // to the heuristic ladder (0.5x baseline). Candidates still rank by
    // affected baseline mass, so the recommendation must be non-empty.
    let mut db = db();
    let w = workload();
    let params = params_with(FaultInjector::seeded(SEED).with_always(FaultSite::OptimizerCost));
    let rec = Advisor::recommend(&mut db, &w, u64::MAX / 2, SearchAlgorithm::Greedy, &params)
        .expect("degraded recommendation, not an error");
    assert!(
        rec.degraded,
        "total cost failure must mark the run degraded"
    );
    assert!(rec.cost_fallbacks > 0);
    assert!(
        !rec.config.is_empty(),
        "heuristic fallback must still recommend indexes"
    );
    assert!(params.faults.injected(FaultSite::OptimizerCost) > 0);
}

#[test]
fn partial_optimizer_faults_recommend_and_are_deterministic() {
    let run = || {
        let mut db = db();
        let w = workload();
        let params =
            params_with(FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3));
        let rec = Advisor::recommend(
            &mut db,
            &w,
            u64::MAX / 2,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        let injected = params.faults.injected(FaultSite::OptimizerCost);
        (rec.config.clone(), rec.cost_fallbacks, injected)
    };
    let (config_a, fallbacks_a, injected_a) = run();
    let (config_b, fallbacks_b, injected_b) = run();
    assert!(injected_a > 0, "30% rate over a tpox run must fire");
    assert_eq!(config_a, config_b, "same seed, same recommendation");
    assert_eq!(fallbacks_a, fallbacks_b);
    assert_eq!(injected_a, injected_b);
    assert!(!config_a.is_empty());
    assert!(fallbacks_a > 0);
}

#[test]
fn stats_unavailable_faults_degrade_without_panicking() {
    // With statistics permanently unavailable the optimizer cannot cost
    // anything: candidates disappear at enumeration and every baseline is
    // heuristic. The advisor must still return cleanly.
    let mut db = db();
    let w = workload();
    let params = params_with(FaultInjector::seeded(SEED).with_always(FaultSite::StatsUnavailable));
    let rec = Advisor::recommend(&mut db, &w, u64::MAX / 2, SearchAlgorithm::Greedy, &params)
        .expect("degraded recommendation, not a panic");
    assert!(rec.degraded);
    assert!(rec.cost_fallbacks > 0);
}

#[test]
fn intermittent_stats_faults_keep_the_loop_alive() {
    let mut db = db();
    let w = workload();
    let params =
        params_with(FaultInjector::seeded(SEED).with_rate(FaultSite::StatsUnavailable, 0.5));
    // Run the loop several times over the same database — refreshed stats
    // come and go as the injector fires.
    for algo in [SearchAlgorithm::Greedy, SearchAlgorithm::GreedyHeuristics] {
        let rec = Advisor::recommend(&mut db, &w, u64::MAX / 2, algo, &params);
        match rec {
            Ok(r) => assert!(r.baseline_cost >= 0.0),
            Err(e) => {
                let _typed: XiaError = e; // any typed error is acceptable; panics are not
            }
        }
    }
    assert!(params.faults.calls(FaultSite::StatsUnavailable) > 0);
}

#[test]
fn storage_io_faults_during_load_leave_a_usable_partial_database() {
    // Save cleanly, reload under storage-io faults: unreadable documents
    // are skipped, and the advisor tunes whatever survived.
    let full = db();
    let mut bytes = Vec::new();
    xia_storage::save_database_to(&full, &mut bytes).unwrap();

    let path = std::env::temp_dir().join(format!("xia_chaos_{}.xiadb", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let faults = FaultInjector::seeded(SEED).with_rate(FaultSite::StorageIo, 0.10);
    let (partial, report) = xia_storage::load_database_lenient_faulted(&path, &faults).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(report.docs_skipped > 0, "10% over a tpox dump must fire");
    assert!(report.docs_loaded > 0, "most documents survive");

    let mut partial = partial;
    let w = workload();
    let params = AdvisorParams::default();
    let rec = Advisor::recommend(
        &mut partial,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("partial database still tunes");
    assert!(rec.baseline_cost > 0.0);
}

#[test]
fn storage_io_faults_during_save_surface_as_typed_errors() {
    let full = db();
    let faults = FaultInjector::seeded(SEED).with_always(FaultSite::StorageIo);
    let mut bytes = Vec::new();
    let err = xia_storage::save_database_to_faulted(&full, &mut bytes, &faults).unwrap_err();
    assert!(matches!(err, xia_storage::PersistError::Io(_)), "{err}");
}

#[test]
fn one_bad_statement_of_n_is_quarantined_not_fatal() {
    let mut db = db();
    let mut w = workload();
    let n = w.len() + 1;
    w.push(r#"collection('GHOST')/Thing[Field = "x"]"#).unwrap();
    let params = AdvisorParams::default();
    let rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("N-1 good statements still tune");
    assert_eq!(rec.quarantined.len(), 1);
    assert!(
        rec.quarantined[0].detail.contains("GHOST"),
        "{:?}",
        rec.quarantined
    );
    assert!(rec.degraded);
    assert!(!rec.config.is_empty());
    let _ = n;
}

#[test]
fn strict_mode_turns_degradation_into_a_typed_error() {
    let mut db = db();
    let mut w = workload();
    w.push(r#"collection('GHOST')/Thing[Field = "x"]"#).unwrap();
    let params = AdvisorParams {
        strict: true,
        ..AdvisorParams::default()
    };
    let err = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .unwrap_err();
    assert!(
        matches!(err, XiaError::StrictDegradation { quarantined: 1, .. }),
        "{err}"
    );
}

#[test]
fn all_statements_quarantined_is_a_typed_error() {
    let mut db = db();
    let w = Workload::from_texts([
        r#"collection('GHOST')/a[b = 1]"#,
        r#"collection('PHANTOM')/c[d = 2]"#,
    ])
    .unwrap();
    let err = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::Greedy,
        &AdvisorParams::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, XiaError::AllStatementsQuarantined { total: 2 }),
        "{err}"
    );
}

#[test]
fn empty_workload_is_a_typed_error() {
    let mut db = db();
    let err = Advisor::recommend(
        &mut db,
        &Workload::new(),
        u64::MAX / 2,
        SearchAlgorithm::Greedy,
        &AdvisorParams::default(),
    )
    .unwrap_err();
    assert!(matches!(err, XiaError::EmptyWorkload), "{err}");
}

#[test]
fn exhausted_what_if_budget_falls_back_and_stays_deterministic() {
    let run = || {
        let mut db = db();
        let w = workload();
        let params = AdvisorParams {
            what_if_budget: WhatIfBudget::calls(4),
            ..AdvisorParams::default()
        };
        Advisor::recommend(
            &mut db,
            &w,
            u64::MAX / 2,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("budget exhaustion degrades, it does not fail")
    };
    let a = run();
    let b = run();
    assert!(a.degraded, "4 calls cannot cover a tpox search");
    assert!(a.cost_fallbacks > 0);
    assert_eq!(a.config, b.config, "budget fallback is deterministic");
    assert!(!a.config.is_empty());
}

// ---------------------------------------------------------------------
// Checkpoint robustness: a corrupt checkpoint must never panic or poison
// a run — every mutation is rejected at load and the advisor starts
// cold; injected checkpoint-io faults abandon the write (with a
// warning), never the run.

use xia_advisor::RunController;
use xia_obs::{Counter, Telemetry};

/// Runs the advisor, killed deterministically mid-search so a checkpoint
/// with real warm entries lands at `path`; returns the candidate digest
/// the checkpoint was written against.
fn make_checkpoint(path: &std::path::Path) -> u64 {
    let mut db = db();
    let w = workload();
    let params = AdvisorParams {
        ctl: RunController::new()
            .with_cancel_after_polls(3)
            .with_checkpoint(path, 1),
        ..AdvisorParams::default()
    };
    let set = Advisor::prepare(&mut db, &w, &params);
    let digest = xia_advisor::candidate_digest(&set);
    let rec = Advisor::recommend_prepared(
        &mut db,
        &w,
        &set,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("a cancelled run still returns a partial recommendation");
    assert!(!rec.complete, "cancel after 3 polls must stop the run");
    digest
}

#[test]
fn checkpoint_corruption_sweep_rejects_every_mutation() {
    let dir = std::env::temp_dir().join(format!("xia_chaos_ck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("c.ckpt");
    let digest = make_checkpoint(&ck);
    let off = FaultInjector::off();
    let entries = xia_advisor::load_checkpoint(&ck, digest, &off).expect("pristine loads");
    assert!(!entries.is_empty(), "checkpoint must hold warm entries");
    // A checkpoint for a different candidate set is stale, not usable.
    assert!(xia_advisor::load_checkpoint(&ck, digest ^ 1, &off).is_err());
    let bytes = std::fs::read(&ck).unwrap();
    let bad = dir.join("bad.ckpt");
    // Every truncation point: no proper prefix may parse.
    for cut in 0..bytes.len() {
        std::fs::write(&bad, &bytes[..cut]).unwrap();
        assert!(
            xia_advisor::load_checkpoint(&bad, digest, &off).is_err(),
            "truncation at {cut}/{} accepted",
            bytes.len()
        );
    }
    // Bit flips across the file: the checksum (or the framing) catches
    // every one — wrong warm costs must never be replayed silently.
    for pos in (0..bytes.len()).step_by(3) {
        for bit in [0x01u8, 0x10, 0x80] {
            let mut m = bytes.clone();
            m[pos] ^= bit;
            std::fs::write(&bad, &m).unwrap();
            assert!(
                xia_advisor::load_checkpoint(&bad, digest, &off).is_err(),
                "bit flip at {pos} (mask {bit:#04x}) accepted"
            );
        }
    }
    // An injected read fault degrades the same way: Err, then cold start.
    let read_faults = FaultInjector::seeded(SEED).with_always(FaultSite::CheckpointIo);
    assert!(xia_advisor::load_checkpoint(&ck, digest, &read_faults).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_io_write_faults_abandon_the_write_not_the_run() {
    let dir = std::env::temp_dir().join(format!("xia_chaos_ckw_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("w.ckpt");
    let mut db1 = db();
    let w = workload();
    let params = AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_always(FaultSite::CheckpointIo),
        telemetry: Telemetry::new(),
        ctl: RunController::new().with_checkpoint(&ck, 1),
        ..AdvisorParams::default()
    };
    let rec = Advisor::recommend(
        &mut db1,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("checkpoint faults must not fail the run");
    assert!(rec.complete, "the run itself is unaffected");
    assert!(
        !rec.warnings.is_empty(),
        "abandoned checkpoint writes must surface as warnings"
    );
    assert_eq!(
        params.telemetry.get(Counter::CheckpointsWritten),
        0,
        "every write was abandoned"
    );
    // The recommendation is exactly what a run without checkpointing
    // produces — lifecycle plumbing never leaks into the answer.
    let mut db2 = db();
    let clean = Advisor::recommend(
        &mut db2,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &AdvisorParams::default(),
    )
    .unwrap();
    assert_eq!(rec.config, clean.config);
    assert_eq!(rec.est_benefit.to_bits(), clean.est_benefit.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_fault_class_with_every_algorithm_never_panics() {
    // The full matrix at a moderate rate; each cell must end in Ok or a
    // typed error, and the fault handle must report its own activity.
    for site in FaultSite::ALL {
        for algo in SearchAlgorithm::ALL {
            let mut db = db();
            let w = workload();
            let params = params_with(FaultInjector::seeded(SEED).with_rate(site, 0.25));
            let result = Advisor::recommend(&mut db, &w, u64::MAX / 2, algo, &params);
            match result {
                Ok(rec) => {
                    assert!(rec.speedup >= 0.0, "{site}/{algo:?}: bogus speedup");
                }
                Err(e) => {
                    assert!(!format!("{e}").is_empty(), "{site}/{algo:?}");
                }
            }
        }
    }
}
