//! Provenance acceptance: for every search algorithm, every recommended
//! index's derivation chain must be fully reconstructible from the
//! decision journal — a generation event (enumeration or generalization)
//! plus a final KEPT knapsack decision — on the paper's Table I/III
//! running example.

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_obs::{provenance, EventJournal};
use xia_storage::Database;
use xia_workloads::Workload;

/// TPoX-flavoured collection like the paper's running example.
fn paper_db() -> Database {
    let mut db = Database::new();
    let c = db.create_collection("SDOC");
    for i in 0..40 {
        c.build_doc("Security", |b| {
            b.leaf(
                "Symbol",
                if i == 0 {
                    "BCIIPRC".to_string()
                } else {
                    format!("S{i}")
                }
                .as_str(),
            );
            b.leaf("Yield", 3.0 + (i % 5) as f64);
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            b.leaf("Sector", if i % 4 == 0 { "Energy" } else { "Tech" });
            b.end();
            b.end();
            b.leaf("Name", format!("N{i}").as_str());
        });
    }
    db
}

/// The paper's two statements (Table I): Q1 yields candidate C1, Q2
/// yields C2 and C3; generalization adds the Table III patterns.
fn paper_workload() -> Workload {
    Workload::from_texts([
        r#"for $sec in SECURITY('SDOC')/Security
           where $sec/Symbol = "BCIIPRC"
           return $sec"#,
        r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
           where $sec/SecInfo/*/Sector = "Energy"
           return <Security>{$sec/Name}</Security>"#,
    ])
    .unwrap()
}

#[test]
fn every_recommended_index_has_a_full_derivation_chain() {
    for algo in [
        SearchAlgorithm::Greedy,
        SearchAlgorithm::GreedyHeuristics,
        SearchAlgorithm::TopDownLite,
        SearchAlgorithm::TopDownFull,
        SearchAlgorithm::Dp,
    ] {
        let mut db = paper_db();
        let w = paper_workload();
        let params = AdvisorParams {
            journal: EventJournal::new(),
            ..AdvisorParams::default()
        };
        let rec = Advisor::recommend(&mut db, &w, u64::MAX / 2, algo, &params).expect("advise");
        assert!(!rec.indexes.is_empty(), "{algo:?}: nothing recommended");
        let events = params.journal.events();
        for ix in &rec.indexes {
            let d = provenance::derive(&events, &ix.pattern);
            let text = provenance::explain_why(&events, &ix.pattern);
            assert!(
                d.origin.is_some(),
                "{algo:?} {}: no generation event\n{text}",
                ix.pattern
            );
            let (kept, _, size) = d
                .final_decision()
                .unwrap_or_else(|| panic!("{algo:?} {}: no knapsack decision", ix.pattern));
            assert!(
                kept,
                "{algo:?} {}: final decision is not KEPT\n{text}",
                ix.pattern
            );
            assert_eq!(size, ix.size, "{algo:?} {}: size mismatch", ix.pattern);
            assert!(text.contains("final decision: KEPT"), "{text}");
            if ix.general {
                assert!(
                    text.contains("generalized from"),
                    "{algo:?} {}: general index missing its derivation\n{text}",
                    ix.pattern
                );
            } else {
                assert!(
                    text.contains("basic candidate"),
                    "{algo:?} {}: basic index missing its origin\n{text}",
                    ix.pattern
                );
            }
        }
        // The chains survive an export/import cycle.
        let reread = EventJournal::parse_jsonl(&params.journal.to_jsonl()).expect("parse");
        for ix in &rec.indexes {
            let d = provenance::derive(&reread, &ix.pattern);
            assert_eq!(
                d.final_decision().map(|(k, _, _)| k),
                Some(true),
                "{algo:?} {}: KEPT decision lost in JSONL round-trip",
                ix.pattern
            );
        }
    }
}

#[test]
fn default_journal_stays_off_and_records_nothing() {
    let mut db = paper_db();
    let w = paper_workload();
    let params = AdvisorParams::default();
    let rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(!rec.indexes.is_empty());
    assert!(!params.journal.is_enabled());
    assert!(params.journal.is_empty());
    assert!(params.journal.to_jsonl().is_empty());
}
