//! Property suite: CoPhy workload compression is *lossless for advising*.
//!
//! Compressing a workload into weighted cost-identity templates (see
//! `xia_advisor::compress_workload`) changes how much costing work the
//! advisor does — never what it recommends. These tests draw randomized
//! workloads of up to 200 statements (synthetic queries whose literals
//! come from actual document values, so parameter collisions and thus
//! non-trivial compression are common), run the cophy search with
//! compression on and off, and require the same recommendation under a
//! matrix of conditions: clean, injected optimizer/stats faults, and an
//! exhausted what-if budget — each at 1 and 4 workers.
//!
//! Configurations and index DDL must match exactly. Cost totals are
//! compared at a 1e-9 *relative* tolerance: a template's contribution is
//! `weight × δ(representative)` compressed versus `Σ 1.0 × δ(member)`
//! uncompressed, and although every member's δ is bit-identical to the
//! representative's (that is the template-key contract, fault verdicts
//! included via content-derived salts), float multiplication versus
//! repeated addition may differ in the last ulps.

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm, WhatIfBudget};
use xia_fault::{FaultInjector, FaultSite};
use xia_obs::{Counter, Telemetry};
use xia_storage::Database;
use xia_workloads::synthetic::{self, SyntheticConfig};
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::Workload;

const SEED: u64 = 0xD37E;

fn setup() -> Database {
    let mut db = Database::new();
    tpox::generate(&mut db, &TpoxConfig::tiny());
    db
}

/// Random workload of `n ≤ 200` statements over the tiny TPoX data.
fn random_workload(db: &Database, n: usize, seed: u64) -> Workload {
    assert!(n <= 200, "property suite is sized for ≤200 statements");
    let coll = db.collection(tpox::SECURITY_COLL).expect("SDOC exists");
    let texts = synthetic::generate_queries(
        coll,
        &SyntheticConfig {
            queries: n,
            seed,
            anchor_prob: 0.25,
            ..SyntheticConfig::default()
        },
    );
    Workload::from_texts(texts.iter().map(|s| s.as_str())).unwrap()
}

struct Outcome {
    config: Vec<xia_advisor::CandId>,
    indexes: Vec<String>,
    est_benefit: f64,
    baseline_cost: f64,
    workload_cost: f64,
    budget_exhausted: u64,
    faults_injected: u64,
    templates_built: u64,
}

fn advise(
    db: &mut Database,
    w: &Workload,
    compress: bool,
    jobs: usize,
    make_params: &dyn Fn() -> AdvisorParams,
) -> Outcome {
    let params = AdvisorParams {
        compress,
        jobs,
        telemetry: Telemetry::new(),
        ..make_params()
    };
    let rec =
        Advisor::recommend(db, w, u64::MAX / 2, SearchAlgorithm::Cophy, &params).expect("advise");
    Outcome {
        config: rec.config.clone(),
        indexes: rec.indexes.iter().map(|ix| format!("{ix:?}")).collect(),
        est_benefit: rec.est_benefit,
        baseline_cost: rec.baseline_cost,
        workload_cost: rec.workload_cost,
        budget_exhausted: params.telemetry.get(Counter::WhatIfBudgetExhausted),
        faults_injected: params.telemetry.get(Counter::FaultsInjected),
        templates_built: params.telemetry.get(Counter::TemplatesBuilt),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// The property itself: same recommendation and (tolerance-equal) cost
/// totals with compression on and off, for every worker count.
fn assert_lossless(w: &Workload, tag: &str, make_params: &dyn Fn() -> AdvisorParams) {
    for jobs in [1usize, 4] {
        let mut db_on = setup();
        let on = advise(&mut db_on, w, true, jobs, make_params);
        let mut db_off = setup();
        let off = advise(&mut db_off, w, false, jobs, make_params);
        assert_eq!(
            on.config, off.config,
            "[{tag} jobs={jobs}] compression changed the configuration"
        );
        assert_eq!(
            on.indexes, off.indexes,
            "[{tag} jobs={jobs}] compression changed the index DDL"
        );
        for (name, a, b) in [
            ("est_benefit", on.est_benefit, off.est_benefit),
            ("baseline_cost", on.baseline_cost, off.baseline_cost),
            ("workload_cost", on.workload_cost, off.workload_cost),
        ] {
            assert!(
                close(a, b),
                "[{tag} jobs={jobs}] {name} diverged: on={a} off={b}"
            );
        }
        // Compression must actually have happened for the property to
        // mean anything: templates built, and strictly fewer of them
        // than statements (the synthetic generator collides literals).
        assert!(on.templates_built > 0, "[{tag}] compression never ran");
        assert!(
            (on.templates_built as usize) < w.len(),
            "[{tag}] workload did not compress ({} templates for {} statements)",
            on.templates_built,
            w.len()
        );
        assert_eq!(
            off.templates_built, 0,
            "[{tag}] --no-compress still compressed"
        );
    }
}

#[test]
fn compression_is_lossless_clean() {
    let db = setup();
    for (n, seed) in [(60, SEED), (200, SEED ^ 0xA5A5), (120, 0x17)] {
        let w = random_workload(&db, n, seed);
        assert_lossless(
            &w,
            &format!("clean n={n} seed={seed:#x}"),
            &AdvisorParams::default,
        );
    }
}

#[test]
fn compression_is_lossless_under_optimizer_faults() {
    let db = setup();
    let w = random_workload(&db, 150, SEED);
    let mk = || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    };
    assert_lossless(&w, "optimizer-faults", &mk);
    // The schedule must fire in both modes for the matrix leg to bite.
    let mut db_probe = setup();
    let probe = advise(&mut db_probe, &w, true, 1, &mk);
    assert!(probe.faults_injected > 0, "0.3 fault rate never fired");
}

#[test]
fn compression_is_lossless_under_stats_faults() {
    let db = setup();
    let w = random_workload(&db, 150, SEED ^ 0x5A5A);
    assert_lossless(&w, "stats-faults", &|| AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::StatsUnavailable, 0.5),
        ..AdvisorParams::default()
    });
}

#[test]
fn compression_is_lossless_under_exhausted_budget() {
    let db = setup();
    let w = random_workload(&db, 150, SEED ^ 0x0F0F);
    let mk = || AdvisorParams {
        what_if_budget: WhatIfBudget::calls(24),
        ..AdvisorParams::default()
    };
    assert_lossless(&w, "exhausted-budget", &mk);
    // The budget must actually trip in both modes.
    for compress in [true, false] {
        let mut db_probe = setup();
        let probe = advise(&mut db_probe, &w, compress, 1, &mk);
        assert!(
            probe.budget_exhausted > 0,
            "24-call budget never tripped (compress={compress})"
        );
    }
}
