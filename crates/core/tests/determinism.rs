//! Determinism suite: the advisor's output is a pure function of
//! (workload, seed, parameters) — the `--jobs` worker count changes only
//! wall-clock time, never the recommendation or the telemetry totals.
//!
//! Every nondeterministic decision (cache lookups, budget charging, fault
//! salts, stats-availability probes) is planned serially on the
//! coordinator; workers execute pure costing tasks. These tests pin that
//! contract: identical recommendations (bit-for-bit benefit estimates) and
//! identical counter totals at `--jobs` 1, 4, and 8 — clean, under
//! injected faults, and under an exhausted what-if budget.

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm, WhatIfBudget};
use xia_fault::{FaultInjector, FaultSite};
use xia_obs::{Counter, Telemetry};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::Workload;

const SEED: u64 = 0xD37E;
const JOBS: [usize; 3] = [1, 4, 8];

/// Counters whose totals must not depend on the worker count.
const PINNED: [Counter; 12] = [
    Counter::OptimizerEvaluateCalls,
    Counter::BenefitCacheHits,
    Counter::BenefitCacheMisses,
    Counter::BenefitEvaluations,
    Counter::CostFallbacks,
    Counter::WhatIfBudgetExhausted,
    Counter::FaultsInjected,
    Counter::VirtualIndexesCreated,
    Counter::VirtualIndexesDropped,
    Counter::TemplatesBuilt,
    Counter::StmtsCompressed,
    Counter::LpIterations,
];

/// Everything the suite compares across worker counts.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    config: Vec<xia_advisor::CandId>,
    indexes: Vec<String>,
    est_benefit_bits: u64,
    baseline_bits: u64,
    workload_bits: u64,
    optimizer_calls: u64,
    cache_hits: u64,
    cache_misses: u64,
    counters: Vec<(Counter, u64)>,
}

fn run(algo: SearchAlgorithm, jobs: usize, make_params: impl Fn() -> AdvisorParams) -> Fingerprint {
    let mut db = Database::new();
    let cfg = TpoxConfig::tiny();
    tpox::generate(&mut db, &cfg);
    let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
    let params = AdvisorParams {
        jobs,
        telemetry: Telemetry::new(),
        ..make_params()
    };
    let rec = Advisor::recommend(&mut db, &w, u64::MAX / 2, algo, &params).expect("advise");
    Fingerprint {
        config: rec.config.clone(),
        indexes: rec.indexes.iter().map(|ix| format!("{ix:?}")).collect(),
        est_benefit_bits: rec.est_benefit.to_bits(),
        baseline_bits: rec.baseline_cost.to_bits(),
        workload_bits: rec.workload_cost.to_bits(),
        optimizer_calls: rec.eval_stats.optimizer_calls,
        cache_hits: rec.eval_stats.cache_hits,
        cache_misses: rec.eval_stats.cache_misses,
        counters: PINNED
            .iter()
            .map(|&c| (c, params.telemetry.get(c)))
            .collect(),
    }
}

fn assert_jobs_invariant(algo: SearchAlgorithm, make_params: impl Fn() -> AdvisorParams) {
    let reference = run(algo, JOBS[0], &make_params);
    assert!(
        !reference.config.is_empty(),
        "suite must exercise a non-trivial recommendation"
    );
    for &jobs in &JOBS[1..] {
        let other = run(algo, jobs, &make_params);
        assert_eq!(
            reference, other,
            "jobs=1 and jobs={jobs} disagree for {algo:?}"
        );
    }
}

#[test]
fn clean_run_is_jobs_invariant_greedy() {
    assert_jobs_invariant(SearchAlgorithm::Greedy, AdvisorParams::default);
}

#[test]
fn clean_run_is_jobs_invariant_heuristics() {
    assert_jobs_invariant(SearchAlgorithm::GreedyHeuristics, AdvisorParams::default);
}

#[test]
fn clean_run_is_jobs_invariant_cophy() {
    // Compression is on by default for cophy; it runs on the coordinator
    // (first-occurrence template order), so the compressed run must be
    // jobs-invariant like every other mode — including the compression
    // counters pinned below.
    assert_jobs_invariant(SearchAlgorithm::Cophy, AdvisorParams::default);
    let probe = run(SearchAlgorithm::Cophy, 4, AdvisorParams::default);
    let get = |c: Counter| {
        probe
            .counters
            .iter()
            .find(|(k, _)| *k == c)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    assert!(get(Counter::TemplatesBuilt) > 0, "compression never ran");
    assert!(get(Counter::LpIterations) > 0, "relaxation never iterated");
}

#[test]
fn cophy_without_compression_is_jobs_invariant() {
    assert_jobs_invariant(SearchAlgorithm::Cophy, || AdvisorParams {
        compress: false,
        ..AdvisorParams::default()
    });
}

#[test]
fn cophy_faults_are_jobs_invariant() {
    assert_jobs_invariant(SearchAlgorithm::Cophy, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
}

#[test]
fn optimizer_faults_are_jobs_invariant() {
    assert_jobs_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
    // The schedule must actually fire for the invariant to mean anything.
    let probe = run(SearchAlgorithm::GreedyHeuristics, 4, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
    let injected = probe
        .counters
        .iter()
        .find(|(c, _)| *c == Counter::FaultsInjected)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(injected > 0, "0.3 fault rate never fired");
}

#[test]
fn stats_faults_are_jobs_invariant() {
    assert_jobs_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::StatsUnavailable, 0.5),
        ..AdvisorParams::default()
    });
}

#[test]
fn call_budget_exhaustion_is_jobs_invariant() {
    // A tight call budget forces the degradation ladder mid-search. Budget
    // charging happens at task-planning time on the coordinator, so the
    // exact statement at which the budget trips is identical for every
    // worker count.
    assert_jobs_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        what_if_budget: WhatIfBudget::calls(4),
        ..AdvisorParams::default()
    });
}

#[test]
fn faults_and_budget_combined_are_jobs_invariant() {
    assert_jobs_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.2),
        what_if_budget: WhatIfBudget::calls(32),
        ..AdvisorParams::default()
    });
}

/// The value part of a fingerprint: everything the recommendation promises
/// the user, excluding call accounting. Pruned and unpruned runs serve
/// some costings from the statement cache instead of re-invoking the
/// optimizer, so call counters legitimately differ across *modes* (they
/// stay pinned across worker counts within each mode); the recommendation
/// itself — configuration, index DDL, and every cost estimate, bit for
/// bit — must not.
fn values(f: &Fingerprint) -> (Vec<xia_advisor::CandId>, Vec<String>, u64, u64, u64) {
    (
        f.config.clone(),
        f.indexes.clone(),
        f.est_benefit_bits,
        f.baseline_bits,
        f.workload_bits,
    )
}

fn assert_prune_invariant(algo: SearchAlgorithm, make_params: impl Fn() -> AdvisorParams) {
    for jobs in [1, 4] {
        let on = run(algo, jobs, || AdvisorParams {
            prune: true,
            ..make_params()
        });
        assert!(!on.config.is_empty() || algo == SearchAlgorithm::Greedy);
        let off = run(algo, jobs, || AdvisorParams {
            prune: false,
            ..make_params()
        });
        assert_eq!(
            values(&on),
            values(&off),
            "pruning changed the recommendation for {algo:?} at jobs={jobs}"
        );
    }
}

#[test]
fn pruning_preserves_recommendation_clean() {
    assert_prune_invariant(SearchAlgorithm::Greedy, AdvisorParams::default);
    assert_prune_invariant(SearchAlgorithm::GreedyHeuristics, AdvisorParams::default);
    assert_prune_invariant(SearchAlgorithm::TopDownFull, AdvisorParams::default);
}

#[test]
fn pruning_preserves_recommendation_under_faults() {
    assert_prune_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
    assert_prune_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::StatsUnavailable, 0.5),
        ..AdvisorParams::default()
    });
}

#[test]
fn pruning_preserves_recommendation_under_exhausted_budget() {
    // The budget account charges only statements actually re-costed —
    // identically with pruning on or off — so the exact probe at which
    // the budget trips (and the degradation ladder engages) is the same
    // in both modes.
    assert_prune_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        what_if_budget: WhatIfBudget::calls(4),
        ..AdvisorParams::default()
    });
    assert_prune_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.2),
        what_if_budget: WhatIfBudget::calls(32),
        ..AdvisorParams::default()
    });
}

#[test]
fn unpruned_mode_is_jobs_invariant() {
    // `--no-prune` replays statement-cache hits through real optimizer
    // calls; those calls are planned on the coordinator like any other,
    // so the mode stays jobs-invariant including every pinned counter.
    assert_jobs_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        prune: false,
        ..AdvisorParams::default()
    });
}

#[test]
fn pruning_saves_calls_and_reports_counters() {
    let run_with = |prune: bool| {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let params = AdvisorParams {
            prune,
            telemetry: Telemetry::new(),
            ..AdvisorParams::default()
        };
        let rec = Advisor::recommend(
            &mut db,
            &w,
            u64::MAX / 2,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        (rec.eval_stats.optimizer_calls, params.telemetry)
    };
    let (calls_on, t_on) = run_with(true);
    let (calls_off, t_off) = run_with(false);
    assert!(
        calls_on < calls_off,
        "pruning saved no optimizer calls: on={calls_on} off={calls_off}"
    );
    assert!(t_on.get(Counter::StatementsPruned) > 0);
    assert!(t_on.get(Counter::StmtCacheHits) > 0);
    assert!(t_on.get(Counter::DeltaProbes) > 0);
    assert_eq!(t_off.get(Counter::StatementsPruned), 0);
    // The searches issue the same probe sequence in both modes.
    assert_eq!(
        t_on.get(Counter::DeltaProbes),
        t_off.get(Counter::DeltaProbes)
    );
}

/// `--no-fastpath` parity: the interning/semi-naive fast path must leave
/// the *entire* fingerprint untouched — recommendation, every cost bit,
/// and every pinned counter. (The fast path's own accounting lives in
/// counters outside the pinned set, so fast-on and fast-off runs agree on
/// everything compared here.)
fn assert_fastpath_invariant(algo: SearchAlgorithm, make_params: impl Fn() -> AdvisorParams) {
    for jobs in [1, 4] {
        let on = run(algo, jobs, || AdvisorParams {
            fastpath: true,
            ..make_params()
        });
        assert!(!on.config.is_empty() || algo == SearchAlgorithm::Greedy);
        let off = run(algo, jobs, || AdvisorParams {
            fastpath: false,
            ..make_params()
        });
        assert_eq!(
            on, off,
            "fast path changed the outcome for {algo:?} at jobs={jobs}"
        );
    }
}

#[test]
fn fastpath_preserves_recommendation_clean() {
    assert_fastpath_invariant(SearchAlgorithm::Greedy, AdvisorParams::default);
    assert_fastpath_invariant(SearchAlgorithm::GreedyHeuristics, AdvisorParams::default);
    assert_fastpath_invariant(SearchAlgorithm::TopDownFull, AdvisorParams::default);
}

#[test]
fn fastpath_preserves_recommendation_under_faults() {
    assert_fastpath_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
    assert_fastpath_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::StatsUnavailable, 0.5),
        ..AdvisorParams::default()
    });
}

#[test]
fn fastpath_preserves_recommendation_under_exhausted_budget() {
    assert_fastpath_invariant(SearchAlgorithm::Greedy, || AdvisorParams {
        what_if_budget: WhatIfBudget::calls(4),
        ..AdvisorParams::default()
    });
}

#[test]
fn naive_mode_is_jobs_invariant() {
    // `--no-fastpath` is the parity baseline; it must satisfy the same
    // jobs-invariance contract as the default path.
    assert_jobs_invariant(SearchAlgorithm::GreedyHeuristics, || AdvisorParams {
        fastpath: false,
        ..AdvisorParams::default()
    });
}

/// Candidate-set-level parity on the real TPoX workload: patterns, kinds,
/// origins, and DAG edge lists (in stored order) must be byte-identical
/// with the semi-naive fixpoint on or off.
#[test]
fn fastpath_preserves_candidate_set_and_dag() {
    let prepare = |fastpath: bool| {
        let mut db = Database::new();
        let cfg = TpoxConfig::tiny();
        tpox::generate(&mut db, &cfg);
        let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
        let params = AdvisorParams {
            fastpath,
            telemetry: Telemetry::new(),
            ..AdvisorParams::default()
        };
        let set = Advisor::prepare(&mut db, &w, &params);
        let dump: Vec<String> = set
            .iter()
            .map(|c| {
                format!(
                    "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
                    c.id,
                    c.collection,
                    c.pattern,
                    c.kind,
                    c.origin,
                    c.children,
                    c.parents,
                    c.affected.iter().collect::<Vec<_>>()
                )
            })
            .collect();
        (dump, params.telemetry)
    };
    let (fast, t_fast) = prepare(true);
    let (naive, t_naive) = prepare(false);
    assert_eq!(fast, naive, "candidate set diverges fast vs naive");
    // Both modes report pair visits; the fast path visits strictly fewer.
    let nv = t_naive.get(Counter::GeneralizePairsVisited);
    let fv = t_fast.get(Counter::GeneralizePairsVisited);
    assert!(nv > 0 && fv > 0, "pair-visit accounting missing");
    assert!(fv < nv, "semi-naive visited {fv}, naive {nv}");
}

#[test]
fn repeated_runs_at_same_jobs_are_identical() {
    for jobs in JOBS {
        let a = run(
            SearchAlgorithm::GreedyHeuristics,
            jobs,
            AdvisorParams::default,
        );
        let b = run(
            SearchAlgorithm::GreedyHeuristics,
            jobs,
            AdvisorParams::default,
        );
        assert_eq!(a, b, "jobs={jobs} not reproducible run-to-run");
    }
}

// ---------------------------------------------------------------------
// Observability surfaces: the decision journal is emitted entirely on
// the coordinator, so its JSONL export must be byte-identical across
// worker counts and across the fast/naive generalization paths. Trace
// reports contain wall-clock timings; with those masked, the remaining
// structure (counters, span tree, latency sample counts) must be
// byte-identical across worker counts too.

/// One full advisor run with the journal enabled; returns the journal
/// JSONL and the time-masked trace-report JSON.
fn run_observed(jobs: usize, make_params: impl Fn() -> AdvisorParams) -> (String, String) {
    let mut db = Database::new();
    let cfg = TpoxConfig::tiny();
    tpox::generate(&mut db, &cfg);
    let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
    let params = AdvisorParams {
        jobs,
        telemetry: Telemetry::new(),
        journal: xia_obs::EventJournal::new(),
        ..make_params()
    };
    let rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(!rec.config.is_empty());
    let mut report = params.telemetry.report();
    mask_report(&mut report);
    (params.journal.to_jsonl(), report.to_json())
}

/// Zeroes every wall-clock-derived field, keeping structure and sample
/// counts (which are jobs-invariant) intact.
fn mask_report(r: &mut xia_obs::TraceReport) {
    for p in &mut r.phases {
        mask_span(p);
    }
    for (_, s) in &mut r.latencies {
        mask_summary(s);
    }
}

fn mask_span(s: &mut xia_obs::SpanSnapshot) {
    s.micros = 0;
    mask_summary(&mut s.latency);
    for c in &mut s.children {
        mask_span(c);
    }
}

fn mask_summary(s: &mut xia_obs::HistSummary) {
    s.p50_ns = 0;
    s.p95_ns = 0;
    s.p99_ns = 0;
    s.max_ns = 0;
}

#[test]
fn journal_jsonl_is_byte_identical_across_jobs() {
    let (j1, _) = run_observed(1, AdvisorParams::default);
    assert!(!j1.is_empty(), "journal must record the run");
    for &jobs in &JOBS[1..] {
        let (j, _) = run_observed(jobs, AdvisorParams::default);
        assert_eq!(j1, j, "clean journal diverged at jobs={jobs}");
    }
}

#[test]
fn journal_jsonl_is_byte_identical_across_jobs_under_faults() {
    let faulty = || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    };
    let (j1, _) = run_observed(1, faulty);
    assert!(
        j1.contains("fault_injected"),
        "a 0.3 optimizer-cost fault rate must surface in the journal"
    );
    for &jobs in &JOBS[1..] {
        let (j, _) = run_observed(jobs, faulty);
        assert_eq!(j1, j, "faulty journal diverged at jobs={jobs}");
    }
}

#[test]
fn journal_jsonl_is_byte_identical_across_jobs_under_exhausted_budget() {
    let tight = || AdvisorParams {
        what_if_budget: WhatIfBudget::calls(4),
        ..AdvisorParams::default()
    };
    let (j1, _) = run_observed(1, tight);
    assert!(
        j1.contains("budget_exhausted"),
        "a 4-call budget must trip and be journaled"
    );
    for &jobs in &JOBS[1..] {
        let (j, _) = run_observed(jobs, tight);
        assert_eq!(j1, j, "budget-exhausted journal diverged at jobs={jobs}");
    }
}

#[test]
fn journal_jsonl_is_identical_fastpath_vs_naive() {
    let (fast, _) = run_observed(1, || AdvisorParams {
        fastpath: true,
        ..AdvisorParams::default()
    });
    let (naive, _) = run_observed(1, || AdvisorParams {
        fastpath: false,
        ..AdvisorParams::default()
    });
    assert_eq!(
        fast, naive,
        "fast-path and naive generalization must derive the same events"
    );
}

#[test]
fn masked_trace_report_is_byte_identical_across_jobs() {
    let (_, r1) = run_observed(1, AdvisorParams::default);
    assert!(
        r1.contains("what_if_call"),
        "latency section missing from the report: {r1}"
    );
    for &jobs in &JOBS[1..] {
        let (_, r) = run_observed(jobs, AdvisorParams::default);
        assert_eq!(r1, r, "masked trace report diverged at jobs={jobs}");
    }
    let faulty = || AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    };
    let (_, f1) = run_observed(1, faulty);
    for &jobs in &JOBS[1..] {
        let (_, f) = run_observed(jobs, faulty);
        assert_eq!(f1, f, "masked faulty trace report diverged at jobs={jobs}");
    }
}

// ---------------------------------------------------------------------
// Run-lifecycle matrix: cooperative cancellation, checkpoint/resume, and
// the resource governor must all preserve the determinism contract. A
// run killed at *any* checkpoint and resumed must reproduce the
// uninterrupted run bit for bit — recommendation, pinned counters, and
// the full JSONL journal — at every worker count. (Latency histograms
// are excluded: warm-served tasks legitimately skip what-if samples.)

use xia_advisor::RunController;

/// Everything a lifecycle run must reproduce: completion state, the
/// recommendation, the pinned counters plus the lifecycle-specific ones,
/// and the byte-exact journal.
#[derive(Debug, PartialEq)]
struct LifecycleRun {
    complete: bool,
    config: Vec<xia_advisor::CandId>,
    indexes: Vec<String>,
    est_benefit_bits: u64,
    counters: Vec<(Counter, u64)>,
    journal: String,
}

fn lifecycle_counters(t: &Telemetry) -> Vec<(Counter, u64)> {
    let mut v: Vec<(Counter, u64)> = PINNED.iter().map(|&c| (c, t.get(c))).collect();
    v.push((
        Counter::CheckpointsWritten,
        t.get(Counter::CheckpointsWritten),
    ));
    v.push((
        Counter::GovernorDemotions,
        t.get(Counter::GovernorDemotions),
    ));
    v
}

fn run_lifecycle(
    jobs: usize,
    make_params: &dyn Fn() -> AdvisorParams,
    ctl: RunController,
    resume_from: Option<&std::path::Path>,
) -> LifecycleRun {
    let mut db = Database::new();
    let cfg = TpoxConfig::tiny();
    tpox::generate(&mut db, &cfg);
    let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
    let params = AdvisorParams {
        jobs,
        telemetry: Telemetry::new(),
        journal: xia_obs::EventJournal::new(),
        ctl,
        ..make_params()
    };
    let set = Advisor::prepare(&mut db, &w, &params);
    if let Some(path) = resume_from {
        let entries =
            xia_advisor::load_checkpoint(path, xia_advisor::candidate_digest(&set), &params.faults)
                .expect("checkpoint must load");
        params.ctl.install_warm(entries);
    }
    let rec = Advisor::recommend_prepared(
        &mut db,
        &w,
        &set,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    LifecycleRun {
        complete: rec.complete,
        config: rec.config.clone(),
        indexes: rec.indexes.iter().map(|ix| format!("{ix:?}")).collect(),
        est_benefit_bits: rec.est_benefit.to_bits(),
        counters: lifecycle_counters(&params.telemetry),
        journal: params.journal.to_jsonl(),
    }
}

fn lc_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xia_lc_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The any-prefix resume property: kill the run at the k-th cooperative
/// poll for a sweep of k, resume each from its checkpoint, and require
/// the resumed run to equal the uninterrupted (checkpointing) run —
/// journal included — at jobs 1 and 4.
fn assert_resume_equivalence(tag: &str, make_params: &dyn Fn() -> AdvisorParams) {
    let dir = lc_dir(tag);
    for jobs in [1usize, 4] {
        let full_ck = dir.join(format!("full_{jobs}.ckpt"));
        let full = run_lifecycle(
            jobs,
            make_params,
            RunController::new().with_checkpoint(&full_ck, 1),
            None,
        );
        assert!(full.complete, "uninterrupted run must complete");
        assert!(!full.config.is_empty(), "suite needs a non-trivial run");
        for k in 1..=4u64 {
            let kill_ck = dir.join(format!("kill_{jobs}_{k}.ckpt"));
            let killed = run_lifecycle(
                jobs,
                make_params,
                RunController::new()
                    .with_cancel_after_polls(k)
                    .with_checkpoint(&kill_ck, 1),
                None,
            );
            assert!(!killed.complete, "cancel at poll {k} must stop the run");
            assert!(kill_ck.exists(), "stopped run must leave a checkpoint");
            let next_ck = dir.join(format!("next_{jobs}_{k}.ckpt"));
            let resumed = run_lifecycle(
                jobs,
                make_params,
                RunController::new().with_checkpoint(&next_ck, 1),
                Some(&kill_ck),
            );
            assert_eq!(
                resumed, full,
                "kill at poll {k} + resume diverged from uninterrupted (jobs={jobs}, {tag})"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_matches_uninterrupted_clean() {
    assert_resume_equivalence("clean", &AdvisorParams::default);
}

#[test]
fn resume_matches_uninterrupted_under_faults() {
    assert_resume_equivalence("faults", &|| AdvisorParams {
        faults: FaultInjector::seeded(SEED).with_rate(FaultSite::OptimizerCost, 0.3),
        ..AdvisorParams::default()
    });
}

#[test]
fn resume_matches_uninterrupted_under_exhausted_budget() {
    assert_resume_equivalence("budget", &|| AdvisorParams {
        what_if_budget: WhatIfBudget::calls(32),
        ..AdvisorParams::default()
    });
}

#[test]
fn partial_results_are_jobs_invariant() {
    // Cooperative polls happen only on the coordinator, so a cancelled
    // run stops at the same point — and returns the same best-so-far
    // configuration — for every worker count.
    for k in [1u64, 3, 6] {
        let r1 = run_lifecycle(
            1,
            &AdvisorParams::default,
            RunController::new().with_cancel_after_polls(k),
            None,
        );
        assert!(!r1.complete, "cancel after {k} polls must stop the run");
        assert!(
            r1.journal.contains("run_stopped"),
            "stop must be journaled: {}",
            r1.journal
        );
        for jobs in [4usize, 8] {
            let r = run_lifecycle(
                jobs,
                &AdvisorParams::default,
                RunController::new().with_cancel_after_polls(k),
                None,
            );
            assert_eq!(r1, r, "partial result diverged at jobs={jobs}, k={k}");
        }
    }
    // A zero deadline expires at the first poll, deterministically.
    let d1 = run_lifecycle(
        1,
        &AdvisorParams::default,
        RunController::new().with_deadline_ms(0),
        None,
    );
    assert!(!d1.complete);
    for jobs in [4usize, 8] {
        let d = run_lifecycle(
            jobs,
            &AdvisorParams::default,
            RunController::new().with_deadline_ms(0),
            None,
        );
        assert_eq!(d1, d, "deadline partial result diverged at jobs={jobs}");
    }
}

#[test]
fn governor_ladder_is_deterministic_across_jobs() {
    // A 1-byte budget trips on the first batch and walks the ladder; the
    // coordinator-side byte tally makes every demotion (and the degraded
    // costings after it) identical at every worker count.
    let mk = || RunController::new().with_mem_budget(1);
    let r1 = run_lifecycle(1, &AdvisorParams::default, mk(), None);
    assert!(
        r1.complete,
        "the governor degrades, it does not stop the run"
    );
    let demotions = r1
        .counters
        .iter()
        .find(|(c, _)| *c == Counter::GovernorDemotions)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(demotions > 0, "a 1-byte budget must demote");
    assert!(
        r1.journal.contains("governor_demoted"),
        "every demotion must be journaled"
    );
    for jobs in [4usize, 8] {
        let r = run_lifecycle(jobs, &AdvisorParams::default, mk(), None);
        assert_eq!(r1, r, "governor run diverged at jobs={jobs}");
    }
}

#[test]
fn journal_round_trips_through_jsonl() {
    let mut db = Database::new();
    let cfg = TpoxConfig::tiny();
    tpox::generate(&mut db, &cfg);
    let w = Workload::from_texts(tpox::queries(&cfg).iter().map(|s| s.as_str())).unwrap();
    let params = AdvisorParams {
        journal: xia_obs::EventJournal::new(),
        ..AdvisorParams::default()
    };
    Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::TopDownFull,
        &params,
    )
    .expect("advise");
    let events = params.journal.events();
    assert!(!events.is_empty());
    let parsed = xia_obs::EventJournal::parse_jsonl(&params.journal.to_jsonl()).expect("parse");
    assert_eq!(events, parsed, "JSONL round-trip must preserve the stream");
}
