//! # xia-bench
//!
//! Experiment harness for the XML Index Advisor reproduction. Every table
//! and figure of the paper's evaluation section has a module here and a
//! binary in `src/bin/` that regenerates it (see DESIGN.md §4 for the
//! experiment index):
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Fig. 2 (estimated speedup vs budget)  | [`experiments::speedup_budget`] | `fig2_speedup` |
//! | Fig. 3 (advisor run time vs budget)   | [`experiments::speedup_budget`] | `fig3_advisor_time` |
//! | Table III (candidate counts)          | [`experiments::candidates`] | `table3_candidates` |
//! | Table IV (general vs specific counts) | [`experiments::generality`] | `table4_generality` |
//! | Fig. 4 (generalization, estimated)    | [`experiments::generalization`] | `fig4_generalization` |
//! | Fig. 5 (generalization, actual)       | [`experiments::generalization`] | `fig5_actual` |
//! | XMark (tech-report appendix)          | [`experiments::xmark_exp`] | `xmark_experiment` |
//! | E9 ablations (cache/affected/β)       | [`experiments::ablation`] | `ablation_benefit_cache` |
//! | E17 warm service vs cold batch        | [`experiments::server_warm`] | `server_overhead_gate` |

pub mod experiments;
pub mod lab;
pub mod report;

pub use lab::TpoxLab;
pub use report::{write_bench_json, write_csv, Table};
