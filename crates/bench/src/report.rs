//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title, printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes a table as CSV under `results/` (created on demand). Returns the
/// path written. Failures are reported, not fatal — experiments still
/// print their tables.
pub fn write_csv(table: &Table, name: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Writes `BENCH_<name>.json` in the current directory: a flat,
/// machine-readable perf snapshot (one JSON object) so the performance
/// trajectory is tracked across PRs instead of living only in CSVs.
/// Returns the path written; failures are reported, not fatal.
pub fn write_bench_json(
    name: &str,
    fields: Vec<(String, xia_obs::json::Json)>,
) -> Option<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    let body = xia_obs::json::Json::Obj(fields).render() + "\n";
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Formats a float with limited precision for tables.
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a byte count as mebibytes.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["c"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.234), "1.23");
        assert_eq!(f(1234.5), "1234"); // {:.0} rounds half-to-even
        assert_eq!(f(f64::INFINITY), "inf");
        assert_eq!(mib(1024 * 1024), "1.00");
    }
}
