//! Advisor scalability: run time and optimizer calls as the workload
//! grows (companion to Fig. 3, which sweeps budget at fixed workload).
//!
//! The claim under test is the paper's "during its search, the advisor
//! makes a minimal number of optimizer calls, making it very efficient":
//! with affected sets and the sub-configuration cache, optimizer calls
//! grow roughly linearly in the number of *distinct* statements, not with
//! the exponential configuration space.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use std::time::Instant;
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_obs::{Counter, Telemetry};
use xia_storage::{ingest_batch, runstats, Database, IngestOptions};
use xia_workloads::tpox::{self, TpoxConfig};

/// One measured point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of workload queries.
    pub queries: usize,
    /// Candidates after generalization.
    pub candidates: usize,
    /// Advisor wall time (ms), search phase only.
    pub ms: f64,
    /// Evaluate-mode optimizer calls.
    pub optimizer_calls: u64,
}

/// Runs greedy-with-heuristics at the All-Index budget for growing
/// synthetic workloads.
pub fn run(lab: &mut TpoxLab, sizes: &[usize]) -> Vec<ScalePoint> {
    let params = AdvisorParams::default();
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let w = lab.synthetic_workload(n, 7_000 + i as u64);
        let set = Advisor::prepare(&mut lab.db, &w, &params);
        let budget = set.config_size(&Advisor::all_index_config(&set));
        let rec = Advisor::recommend_prepared(
            &mut lab.db,
            &w,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        out.push(ScalePoint {
            queries: n,
            candidates: set.len(),
            ms: rec.advisor_time.as_secs_f64() * 1e3,
            optimizer_calls: rec.eval_stats.optimizer_calls,
        });
    }
    out
}

/// Renders the table.
pub fn table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "Scalability — advisor cost vs workload size (greedy+heuristics)",
        &[
            "queries",
            "candidates",
            "ms",
            "optimizer calls",
            "calls/query",
        ],
    );
    for p in points {
        t.row(vec![
            p.queries.to_string(),
            p.candidates.to_string(),
            f(p.ms),
            p.optimizer_calls.to_string(),
            f(p.optimizer_calls as f64 / p.queries.max(1) as f64),
        ]);
    }
    t
}

/// Default workload sizes.
pub const DEFAULT_SIZES: [usize; 5] = [10, 20, 40, 80, 160];

/// One measured data-path point: parallel ingestion plus columnar
/// statistics scans at `factor` × the tiny TPoX generator configuration.
#[derive(Debug, Clone)]
pub struct DataPathPoint {
    /// Multiplier applied to [`TpoxConfig::tiny`].
    pub factor: usize,
    /// Documents ingested across the three collections.
    pub docs: usize,
    /// Nodes ingested.
    pub nodes: u64,
    /// Wall time for the full batch ingest (ms).
    pub ingest_ms: f64,
    /// Ingest throughput.
    pub nodes_per_sec: f64,
    /// Columnar RUNSTATS throughput (value+structure rows per second).
    pub scans_per_sec: f64,
    /// Worker threads used for ingestion.
    pub jobs: usize,
}

/// RUNSTATS passes per point when measuring scan throughput.
const SCAN_ROUNDS: usize = 3;

/// Ingest rounds per point; the fastest is kept (same discipline as
/// [`crate::lab::EXEC_ROUNDS`]) to suppress scheduler noise on shared
/// runners.
const INGEST_ROUNDS: usize = 3;

/// The tiny generator config scaled by `factor` (seed kept fixed so every
/// factor extends the same deterministic corpus family).
fn tiny_scaled(factor: usize) -> TpoxConfig {
    let t = TpoxConfig::tiny();
    TpoxConfig {
        securities: t.securities * factor,
        orders: t.orders * factor,
        customers: t.customers * factor,
        seed: t.seed,
    }
}

/// Runs the data-path sweep: for each factor, serialize `factor` × tiny
/// TPoX documents, ingest them through the streaming parallel batch path,
/// then drive [`SCAN_ROUNDS`] columnar RUNSTATS passes over the result.
pub fn run_datapath(factors: &[usize], jobs: usize) -> Vec<DataPathPoint> {
    let mut out = Vec::new();
    for &factor in factors {
        let cfg = tiny_scaled(factor.max(1));
        let (securities, orders, customers) = tpox::docs_xml(&cfg);
        let batches = [
            (tpox::SECURITY_COLL, &securities),
            (tpox::ORDER_COLL, &orders),
            (tpox::CUSTACC_COLL, &customers),
        ];

        // Fastest of several rounds: ingestion is deterministic, so the
        // extra rounds only exist to shed scheduler noise.
        let mut db = Database::new();
        let mut telemetry = Telemetry::new();
        let mut docs = 0usize;
        let mut nodes = 0u64;
        let mut workers = 1usize;
        let mut ingest_secs = f64::INFINITY;
        for _ in 0..INGEST_ROUNDS {
            let mut round_db = Database::new();
            for (name, _) in &batches {
                round_db.create_collection(name);
            }
            let round_telemetry = Telemetry::new();
            round_db.set_telemetry(&round_telemetry);
            docs = 0;
            nodes = 0;
            let t0 = Instant::now();
            for (name, texts) in &batches {
                let coll = round_db.collection_mut(name).expect("just created");
                let report = ingest_batch(
                    coll,
                    texts,
                    IngestOptions {
                        jobs,
                        use_dom: false,
                    },
                )
                .expect("generated TPoX documents parse");
                docs += report.doc_ids.len();
                nodes += report.nodes;
                workers = workers.max(report.workers);
            }
            let secs = t0.elapsed().as_secs_f64();
            if secs < ingest_secs {
                ingest_secs = secs;
            }
            db = round_db;
            telemetry = round_telemetry;
        }

        // Same fastest-of-rounds discipline for the statistics scans; the
        // per-pass row count is deterministic, only the clock is noisy.
        let mut scan_secs = f64::INFINITY;
        let mut rows_scanned = 0u64;
        for _ in 0..SCAN_ROUNDS {
            let rows_before = telemetry.get(Counter::ColumnarScanRows);
            let t1 = Instant::now();
            for (name, _) in &batches {
                let coll = db.collection(name).expect("just created");
                std::hint::black_box(runstats(coll));
            }
            let secs = t1.elapsed().as_secs_f64();
            if secs < scan_secs {
                scan_secs = secs;
            }
            rows_scanned = telemetry.get(Counter::ColumnarScanRows) - rows_before;
        }

        out.push(DataPathPoint {
            factor,
            docs,
            nodes,
            ingest_ms: ingest_secs * 1e3,
            nodes_per_sec: nodes as f64 / ingest_secs.max(1e-9),
            scans_per_sec: rows_scanned as f64 / scan_secs.max(1e-9),
            jobs: workers,
        });
    }
    out
}

/// Renders the data-path table.
pub fn datapath_table(points: &[DataPathPoint]) -> Table {
    let mut t = Table::new(
        "Scalability — data path throughput vs corpus size (streaming + parallel ingest)",
        &[
            "factor",
            "docs",
            "nodes",
            "ingest ms",
            "nodes/sec",
            "scans/sec",
            "jobs",
        ],
    );
    for p in points {
        t.row(vec![
            p.factor.to_string(),
            p.docs.to_string(),
            p.nodes.to_string(),
            f(p.ingest_ms),
            f(p.nodes_per_sec),
            f(p.scans_per_sec),
            p.jobs.to_string(),
        ]);
    }
    t
}

/// Renders both sweeps as one table (and one CSV): advisor rows carry the
/// workload columns, datapath rows the throughput columns; cells that do
/// not apply to a sweep hold `-`.
pub fn combined_table(advisor: &[ScalePoint], datapath: &[DataPathPoint]) -> Table {
    const NA: &str = "-";
    let mut t = Table::new(
        "Scalability — advisor cost vs workload size; data path vs corpus size",
        &[
            "sweep",
            "size",
            "candidates",
            "ms",
            "optimizer calls",
            "calls/query",
            "docs",
            "nodes",
            "nodes/sec",
            "scans/sec",
            "jobs",
        ],
    );
    for p in advisor {
        t.row(vec![
            "advisor".to_string(),
            p.queries.to_string(),
            p.candidates.to_string(),
            f(p.ms),
            p.optimizer_calls.to_string(),
            f(p.optimizer_calls as f64 / p.queries.max(1) as f64),
            NA.to_string(),
            NA.to_string(),
            NA.to_string(),
            NA.to_string(),
            NA.to_string(),
        ]);
    }
    for p in datapath {
        t.row(vec![
            "datapath".to_string(),
            p.factor.to_string(),
            NA.to_string(),
            f(p.ingest_ms),
            NA.to_string(),
            NA.to_string(),
            p.docs.to_string(),
            p.nodes.to_string(),
            f(p.nodes_per_sec),
            f(p.scans_per_sec),
            p.jobs.to_string(),
        ]);
    }
    t
}

/// Default data-path factors: 10× to 100× the tiny generator corpus (the
/// 100× point is ~27,000 documents, >13× the standard experiment lab).
pub const DEFAULT_FACTORS: [usize; 3] = [10, 30, 100];
