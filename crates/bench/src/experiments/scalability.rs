//! Advisor scalability: run time and optimizer calls as the workload
//! grows (companion to Fig. 3, which sweeps budget at fixed workload).
//!
//! The claim under test is the paper's "during its search, the advisor
//! makes a minimal number of optimizer calls, making it very efficient":
//! with affected sets and the sub-configuration cache, optimizer calls
//! grow roughly linearly in the number of *distinct* statements, not with
//! the exponential configuration space.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};

/// One measured point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of workload queries.
    pub queries: usize,
    /// Candidates after generalization.
    pub candidates: usize,
    /// Advisor wall time (ms), search phase only.
    pub ms: f64,
    /// Evaluate-mode optimizer calls.
    pub optimizer_calls: u64,
}

/// Runs greedy-with-heuristics at the All-Index budget for growing
/// synthetic workloads.
pub fn run(lab: &mut TpoxLab, sizes: &[usize]) -> Vec<ScalePoint> {
    let params = AdvisorParams::default();
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let w = lab.synthetic_workload(n, 7_000 + i as u64);
        let set = Advisor::prepare(&mut lab.db, &w, &params);
        let budget = set.config_size(&Advisor::all_index_config(&set));
        let rec = Advisor::recommend_prepared(
            &mut lab.db,
            &w,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        out.push(ScalePoint {
            queries: n,
            candidates: set.len(),
            ms: rec.advisor_time.as_secs_f64() * 1e3,
            optimizer_calls: rec.eval_stats.optimizer_calls,
        });
    }
    out
}

/// Renders the table.
pub fn table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "Scalability — advisor cost vs workload size (greedy+heuristics)",
        &[
            "queries",
            "candidates",
            "ms",
            "optimizer calls",
            "calls/query",
        ],
    );
    for p in points {
        t.row(vec![
            p.queries.to_string(),
            p.candidates.to_string(),
            f(p.ms),
            p.optimizer_calls.to_string(),
            f(p.optimizer_calls as f64 / p.queries.max(1) as f64),
        ]);
    }
    t
}

/// Default workload sizes.
pub const DEFAULT_SIZES: [usize; 5] = [10, 20, 40, 80, 160];
