//! E17: warm advisor service vs cold batch advising.
//!
//! Cold: every recommend pays the full `xia recommend` pipeline — open
//! the persisted database image, RUNSTATS, candidate enumeration,
//! generalization, sizing, and the what-if benefit fan-out — with fresh
//! caches, which is exactly what a standalone invocation does. Warm: a live `xia-server` session keeps the prepared
//! candidate set and the warm cost store resident, so the 2nd..Nth
//! recommends replay previously captured costings instead of re-running
//! the optimizer. The warm path is measured over a real TCP connection,
//! so protocol framing, JSON rendering, and the shared-database lock are
//! all inside the measurement, not excluded from it.
//!
//! The experiment reports three things: median cold latency, median warm
//! repeat-recommend latency (with the speedup between them), and
//! concurrent-session throughput — plus byte-identity checks proving
//! that the fast path returns the *same* recommendation as the cold one,
//! for a single session and across concurrent sessions.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use crate::report::{f, Table};
use xia_advisor::{AdvisorParams, SearchAlgorithm, TuningSession};
use xia_obs::json::Json;
use xia_server::{render_recommendation, start, ServerConfig};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};

/// Index-size budget used by every recommend in this experiment (well
/// under the wire protocol's numeric cap).
pub const BUDGET: u64 = 1 << 40;

/// The search algorithm under test. Greedy isolates the cache effect the
/// experiment is about: the cold path's cost is dominated by preparation
/// plus the what-if benefit fan-out (exactly what the warm server keeps
/// resident), while the knapsack search the warm path must still run per
/// request stays small. The byte-identity checks hold for any algorithm.
pub const ALGO: SearchAlgorithm = SearchAlgorithm::GreedyHeuristics;

/// A blocking request/reply client over one TCP connection — one warm
/// session for as long as the connection lives. Shared by the E17
/// experiment, the `server_overhead_gate` bin, and the determinism suite.
pub struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// Connects to a server's TCP listener.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Small request/reply lines: Nagle + delayed-ACK would add ~40 ms
        // per direction to every exchange.
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line, reads one reply line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(format!("{line}\n").as_bytes())?;
        stream.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }
}

/// Renders an `observe` request over the given statement texts.
pub fn observe_line(texts: &[String]) -> String {
    Json::Obj(vec![
        ("verb".into(), Json::Str("observe".into())),
        (
            "statements".into(),
            Json::Arr(texts.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
    ])
    .render()
}

/// Renders a `recommend` request at the experiment's budget/algorithm.
pub fn recommend_line() -> String {
    Json::Obj(vec![
        ("verb".into(), Json::Str("recommend".into())),
        ("budget".into(), Json::Num(BUDGET as f64)),
        ("algo".into(), Json::Str(ALGO.name().into())),
    ])
    .render()
}

/// E17 results.
#[derive(Debug, Clone)]
pub struct E17 {
    /// Median cold-path latency (full prepare + recommend), seconds.
    pub cold_secs: f64,
    /// Median warm-path repeat-recommend latency over TCP, seconds.
    pub warm_secs: f64,
    /// `cold_secs / warm_secs`.
    pub speedup: f64,
    /// Warm reply's recommendation is byte-identical to the cold one.
    pub identical: bool,
    /// Measurement rounds per leg.
    pub rounds: usize,
    /// Concurrent sessions in the throughput leg.
    pub sessions: usize,
    /// Recommends issued per session in the throughput leg.
    pub recommends_per_session: usize,
    /// Total replies served per second in the throughput leg.
    pub throughput_rps: f64,
    /// Every concurrent session's final recommendation matched the cold
    /// one byte for byte.
    pub concurrent_identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Extracts the rendered `recommendation` object from a recommend reply.
fn recommendation_of(reply: &str) -> String {
    Json::parse(reply)
        .ok()
        .and_then(|v| v.get("recommendation").map(Json::render))
        .unwrap_or_else(|| format!("unparseable reply: {reply}"))
}

/// Runs E17 at the given TPoX scale: `rounds` timing rounds per leg,
/// then `sessions` concurrent connections each issuing
/// `recommends_per_session` recommends. `jobs` overrides the what-if
/// worker count on both paths (`None` = advisor default).
pub fn run(
    cfg: &TpoxConfig,
    rounds: usize,
    sessions: usize,
    recommends_per_session: usize,
    jobs: Option<usize>,
) -> E17 {
    let rounds = rounds.max(1);
    let texts = tpox::queries(cfg);

    // Serialize the database once; both legs start from the same image.
    let mut db = Database::new();
    tpox::generate(&mut db, cfg);
    let mut image = Vec::new();
    xia_storage::persist::save_database_to(&db, &mut image).expect("serialize lab database");
    drop(db);

    // Cold leg: every round is a full `xia recommend` invocation — open
    // the database image, RUNSTATS, prepare, benefit fan-out, search —
    // with nothing carried over. This is the repeat-invocation model the
    // warm service replaces.
    let mut cold_times = Vec::with_capacity(rounds);
    let mut cold_json = String::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let mut db = xia_storage::persist::load_database_from(&mut std::io::Cursor::new(&image))
            .expect("database image round-trips");
        let mut session = TuningSession::new();
        if let Some(j) = jobs {
            let params = AdvisorParams {
                jobs: j,
                ..Default::default()
            };
            session.set_params(params);
        }
        for t in &texts {
            session.observe(t).expect("generated TPoX queries parse");
        }
        let rec = session
            .recommend(&mut db, BUDGET, ALGO)
            .expect("TPoX workload recommends");
        cold_times.push(t0.elapsed().as_secs_f64());
        cold_json = render_recommendation(&rec).render();
    }

    // Warm leg: one live server, one connection; the first recommend pays
    // the preparation cost, rounds 2..N replay warm state.
    let server_db = xia_storage::persist::load_database_from(&mut std::io::Cursor::new(&image))
        .expect("database image round-trips");
    let config = ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        max_connections: sessions.max(2) + 1,
        jobs,
        ..Default::default()
    };
    let handle = start(config, server_db).expect("loopback listener binds");
    let addr = handle.tcp_addr().expect("tcp listener is up").to_string();

    let mut conn = Conn::connect(&addr).expect("connect to warm server");
    conn.request(&observe_line(&texts)).expect("observe");
    conn.request(&recommend_line()).expect("first recommend");
    let mut warm_times = Vec::with_capacity(rounds);
    let mut warm_reply = String::new();
    for _ in 0..rounds {
        let t0 = Instant::now();
        warm_reply = conn.request(&recommend_line()).expect("warm recommend");
        warm_times.push(t0.elapsed().as_secs_f64());
    }
    let identical = recommendation_of(&warm_reply) == cold_json;

    // Throughput leg: concurrent sessions against the same warm server.
    let t0 = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            let addr = addr.clone();
            let texts = texts.clone();
            std::thread::spawn(move || {
                let mut c = Conn::connect(&addr).expect("connect concurrent session");
                c.request(&observe_line(&texts)).expect("observe");
                let mut last = String::new();
                for _ in 0..recommends_per_session.max(1) {
                    last = c.request(&recommend_line()).expect("recommend");
                }
                last
            })
        })
        .collect();
    let finals: Vec<String> = workers
        .into_iter()
        .map(|w| w.join().expect("session thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let total_replies = sessions * (recommends_per_session.max(1) + 1);
    let concurrent_identical = finals.iter().all(|r| recommendation_of(r) == cold_json);

    handle.shutdown();
    drop(conn);
    handle.join();

    let cold_secs = median(&mut cold_times);
    let warm_secs = median(&mut warm_times).max(1e-9);
    E17 {
        cold_secs,
        warm_secs,
        speedup: cold_secs / warm_secs,
        identical,
        rounds,
        sessions,
        recommends_per_session: recommends_per_session.max(1),
        throughput_rps: total_replies as f64 / secs,
        concurrent_identical,
    }
}

/// Renders the E17 results table.
pub fn table(e: &E17) -> Table {
    let yes_no = |b: bool| if b { "yes" } else { "NO" }.to_string();
    let mut t = Table::new(
        "E17: warm service vs cold batch (repeat recommend)",
        &["metric", "value"],
    );
    t.row(vec![
        "cold recommend (ms, median)".into(),
        f(e.cold_secs * 1e3),
    ]);
    t.row(vec![
        "warm recommend (ms, median)".into(),
        f(e.warm_secs * 1e3),
    ]);
    t.row(vec!["warm speedup (x)".into(), f(e.speedup)]);
    t.row(vec!["byte-identical".into(), yes_no(e.identical)]);
    t.row(vec!["concurrent sessions".into(), e.sessions.to_string()]);
    t.row(vec![
        "recommends/session".into(),
        e.recommends_per_session.to_string(),
    ]);
    t.row(vec!["throughput (replies/s)".into(), f(e.throughput_rps)]);
    t.row(vec![
        "concurrent byte-identical".into(),
        yes_no(e.concurrent_identical),
    ]);
    t
}

/// The machine-readable fields for `BENCH_server.json`.
pub fn bench_fields(e: &E17) -> Vec<(String, Json)> {
    vec![
        ("experiment".into(), Json::Str("E17_server_warm".into())),
        ("cold_ms".into(), Json::Num(e.cold_secs * 1e3)),
        ("warm_ms".into(), Json::Num(e.warm_secs * 1e3)),
        ("speedup".into(), Json::Num(e.speedup)),
        ("identical".into(), Json::Bool(e.identical)),
        ("rounds".into(), Json::Num(e.rounds as f64)),
        ("sessions".into(), Json::Num(e.sessions as f64)),
        (
            "recommends_per_session".into(),
            Json::Num(e.recommends_per_session as f64),
        ),
        ("throughput_rps".into(), Json::Num(e.throughput_rps)),
        (
            "concurrent_identical".into(),
            Json::Bool(e.concurrent_identical),
        ),
    ]
}
