//! Experiment implementations, one module per paper artifact.

pub mod ablation;
pub mod candidates;
pub mod cophy_scaling;
pub mod generality;
pub mod generalization;
pub mod generalization_speedup;
pub mod parallel;
pub mod pruning;
pub mod scalability;
pub mod server_warm;
pub mod speedup_budget;
pub mod update_cost;
pub mod xmark_exp;
