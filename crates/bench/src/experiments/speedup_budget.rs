//! Figures 2 and 3: estimated speedup and advisor run time as functions
//! of the disk-space budget, for all five search algorithms plus the
//! All-Index configuration.
//!
//! The paper sweeps absolute budgets against a 95 MB All-Index size on
//! 1 GB of TPoX data; we sweep budgets as *fractions of the All-Index
//! size*, which preserves the figure's shape independent of scale.

use crate::lab::TpoxLab;
use crate::report::{f, mib, Table};
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_obs::{Counter, Telemetry};
use xia_workloads::Workload;

/// One measured point.
#[derive(Debug, Clone)]
pub struct BudgetPoint {
    /// Budget in bytes.
    pub budget: u64,
    /// Estimated workload speedup of the recommended configuration.
    pub speedup: f64,
    /// Advisor wall time in milliseconds.
    pub advisor_ms: f64,
    /// Evaluate-mode optimizer calls made.
    pub optimizer_calls: u64,
    /// Recommended configuration size.
    pub size: u64,
    /// Number of recommended indexes.
    pub indexes: usize,
    /// Search-phase time (telemetry span) in milliseconds.
    pub search_ms: f64,
    /// Benefit-evaluation time inside the search, in milliseconds.
    pub evaluate_ms: f64,
    /// Sub-configuration cache hits during the search.
    pub cache_hits: u64,
    /// Sub-configuration cache misses during the search.
    pub cache_misses: u64,
    /// Per-statement costings served from the statement cost cache.
    pub stmt_cache_hits: u64,
    /// Per-statement costings the relevance-pruning layer skipped.
    pub statements_pruned: u64,
    /// Incremental `benefit_delta` probes issued by the search.
    pub delta_probes: u64,
    /// Containment verdicts answered from the shared cover cache.
    pub contain_cache_hits: u64,
    /// Containment verdicts decided by the name-mask fast reject.
    pub contain_fast_rejects: u64,
}

/// Results of the budget sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Budget fractions of the All-Index size.
    pub fractions: Vec<f64>,
    /// All-Index configuration size in bytes.
    pub all_index_size: u64,
    /// All-Index estimated speedup (the ceiling line of Fig. 2).
    pub all_index_speedup: f64,
    /// Per-algorithm measurements, aligned with `fractions`.
    pub series: Vec<(SearchAlgorithm, Vec<BudgetPoint>)>,
    /// One-time enumerate-phase time (shared prepare step), milliseconds.
    pub enumerate_ms: f64,
    /// One-time generalize-phase time, milliseconds.
    pub generalize_ms: f64,
    /// One-time candidate-sizing time, milliseconds.
    pub size_ms: f64,
    /// Candidate pairs the (one-time) generalization fixpoint visited.
    pub generalize_pairs_visited: u64,
    /// Pairs the semi-naive fixpoint skipped via compatibility buckets.
    pub pairs_skipped_bucket: u64,
    /// `generalize_pair` calls answered from the canonical-pair memo.
    pub pairs_memo_hits: u64,
}

/// Runs the sweep over the 11-query TPoX workload.
pub fn run(lab: &mut TpoxLab, fractions: &[f64], algorithms: &[SearchAlgorithm]) -> SweepResult {
    let workload = lab.workload();
    run_workload(lab, &workload, fractions, algorithms)
}

/// Runs the sweep over an arbitrary workload with the default worker
/// count.
pub fn run_workload(
    lab: &mut TpoxLab,
    workload: &Workload,
    fractions: &[f64],
    algorithms: &[SearchAlgorithm],
) -> SweepResult {
    run_workload_jobs(
        lab,
        workload,
        fractions,
        algorithms,
        AdvisorParams::default().jobs,
    )
}

/// Runs the sweep with an explicit what-if worker count (`--jobs`): the
/// numbers are identical to the serial sweep; only the timing columns
/// change.
pub fn run_workload_jobs(
    lab: &mut TpoxLab,
    workload: &Workload,
    fractions: &[f64],
    algorithms: &[SearchAlgorithm],
    jobs: usize,
) -> SweepResult {
    let telemetry = Telemetry::new();
    let params = AdvisorParams {
        telemetry: telemetry.clone(),
        jobs,
        ..AdvisorParams::default()
    };
    let set = Advisor::prepare(&mut lab.db, workload, &params);
    // The prepare phases run once and are shared by every sweep point.
    let enumerate_ms = telemetry.span_micros("enumerate") as f64 / 1e3;
    let generalize_ms = telemetry.span_micros("generalize") as f64 / 1e3;
    let size_ms = telemetry.span_micros("size") as f64 / 1e3;
    let generalize_pairs_visited = telemetry.get(Counter::GeneralizePairsVisited);
    let pairs_skipped_bucket = telemetry.get(Counter::PairsSkippedBucket);
    let pairs_memo_hits = telemetry.get(Counter::PairsMemoHits);
    let all = Advisor::all_index_config(&set);
    let all_index_size = set.config_size(&all);

    // All-Index speedup: evaluate the full basic configuration.
    let all_rec = Advisor::recommend_prepared(
        &mut lab.db,
        workload,
        &set,
        all_index_size,
        SearchAlgorithm::Greedy,
        &params,
    )
    .expect("advise");
    // `Greedy` at exactly All-Index budget may differ from All-Index; use
    // the evaluator directly for the ceiling.
    let mut ev = xia_advisor::BenefitEvaluator::new(&mut lab.db, workload, &set);
    let all_index_speedup = ev.speedup(&all);
    drop(ev);
    let _ = all_rec;

    let mut series = Vec::new();
    for &algo in algorithms {
        let mut points = Vec::new();
        for &frac in fractions {
            let budget = (all_index_size as f64 * frac).round() as u64;
            // Isolate this point's phase timings and cache counters.
            telemetry.reset();
            let rec =
                Advisor::recommend_prepared(&mut lab.db, workload, &set, budget, algo, &params)
                    .expect("advise");
            points.push(BudgetPoint {
                budget,
                speedup: rec.speedup,
                advisor_ms: rec.advisor_time.as_secs_f64() * 1e3,
                optimizer_calls: rec.eval_stats.optimizer_calls,
                size: rec.total_size,
                indexes: rec.config.len(),
                search_ms: telemetry.span_micros("search") as f64 / 1e3,
                evaluate_ms: telemetry.span_micros("evaluate") as f64 / 1e3,
                cache_hits: telemetry.get(Counter::BenefitCacheHits),
                cache_misses: telemetry.get(Counter::BenefitCacheMisses),
                stmt_cache_hits: telemetry.get(Counter::StmtCacheHits),
                statements_pruned: telemetry.get(Counter::StatementsPruned),
                delta_probes: telemetry.get(Counter::DeltaProbes),
                contain_cache_hits: telemetry.get(Counter::ContainCacheHits),
                contain_fast_rejects: telemetry.get(Counter::ContainFastRejects),
            });
        }
        series.push((algo, points));
    }
    SweepResult {
        fractions: fractions.to_vec(),
        all_index_size,
        all_index_speedup,
        series,
        enumerate_ms,
        generalize_ms,
        size_ms,
        generalize_pairs_visited,
        pairs_skipped_bucket,
        pairs_memo_hits,
    }
}

/// Fig. 2: estimated speedup vs budget.
pub fn fig2_table(r: &SweepResult) -> Table {
    let mut headers = vec!["budget (xAllIndex)".to_string(), "budget (MiB)".to_string()];
    for (algo, _) in &r.series {
        headers.push(algo.name().to_string());
    }
    headers.push("all-index".to_string());
    let mut t = Table::new(
        "Fig. 2 — estimated workload speedup vs disk budget",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (i, &frac) in r.fractions.iter().enumerate() {
        let budget = (r.all_index_size as f64 * frac).round() as u64;
        let mut row = vec![format!("{frac:.2}"), mib(budget)];
        for (_, points) in &r.series {
            row.push(f(points[i].speedup));
        }
        row.push(f(r.all_index_speedup));
        t.row(row);
    }
    t
}

/// Fig. 3: advisor run time (and optimizer calls) vs budget. The search-
/// and evaluate-phase columns come from the telemetry span tree rather
/// than wall-clock bookkeeping in the harness.
pub fn fig3_table(r: &SweepResult) -> Table {
    let mut headers = vec!["budget (xAllIndex)".to_string()];
    for (algo, _) in &r.series {
        headers.push(format!("{} ms", algo.name()));
        headers.push(format!("{} search ms", algo.name()));
        headers.push(format!("{} eval ms", algo.name()));
        headers.push(format!("{} calls", algo.name()));
    }
    let mut t = Table::new(
        "Fig. 3 — advisor run time vs disk budget",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (i, &frac) in r.fractions.iter().enumerate() {
        let mut row = vec![format!("{frac:.2}")];
        for (_, points) in &r.series {
            row.push(f(points[i].advisor_ms));
            row.push(f(points[i].search_ms));
            row.push(f(points[i].evaluate_ms));
            row.push(points[i].optimizer_calls.to_string());
        }
        t.row(row);
    }
    t
}

/// Telemetry-sourced phase breakdown per (algorithm, budget) point: where
/// the advisor's time goes, and how well the benefit cache works. The
/// enumerate/generalize/size columns repeat the one-time prepare cost so
/// every row is self-contained.
pub fn telemetry_breakdown_table(r: &SweepResult) -> Table {
    let mut t = Table::new(
        "Telemetry — advisor phase breakdown (from xia-obs spans/counters)",
        &[
            "algorithm",
            "budget (xAllIndex)",
            "enumerate ms",
            "generalize ms",
            "size ms",
            "search ms",
            "evaluate ms",
            "cache hits",
            "cache misses",
            "stmt cache hits",
            "statements pruned",
            "delta probes",
            "generalize pairs visited",
            "pairs skipped bucket",
            "pairs memo hits",
            "contain cache hits",
            "contain fast rejects",
        ],
    );
    for (algo, points) in &r.series {
        for (i, p) in points.iter().enumerate() {
            t.row(vec![
                algo.name().to_string(),
                format!("{:.2}", r.fractions[i]),
                f(r.enumerate_ms),
                f(r.generalize_ms),
                f(r.size_ms),
                f(p.search_ms),
                f(p.evaluate_ms),
                p.cache_hits.to_string(),
                p.cache_misses.to_string(),
                p.stmt_cache_hits.to_string(),
                p.statements_pruned.to_string(),
                p.delta_probes.to_string(),
                r.generalize_pairs_visited.to_string(),
                r.pairs_skipped_bucket.to_string(),
                r.pairs_memo_hits.to_string(),
                p.contain_cache_hits.to_string(),
                p.contain_fast_rejects.to_string(),
            ]);
        }
    }
    t
}

/// Latency-histogram summaries from one full advisor run per algorithm:
/// the what-if and containment-check call distributions, plus the
/// per-call distribution of every phase span. Only sample counts are
/// deterministic; the percentile columns are wall-clock.
pub fn latency_table(
    lab: &mut TpoxLab,
    workload: &Workload,
    algorithms: &[SearchAlgorithm],
) -> Table {
    let mut t = Table::new(
        "Latency histograms — per-call distributions (ns), one advisor run per algorithm",
        &[
            "algorithm",
            "metric",
            "count",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "max_ns",
        ],
    );
    for &algo in algorithms {
        let telemetry = Telemetry::new();
        let params = AdvisorParams {
            telemetry: telemetry.clone(),
            ..AdvisorParams::default()
        };
        let set = Advisor::prepare(&mut lab.db, workload, &params);
        let budget = set.config_size(&Advisor::all_index_config(&set));
        Advisor::recommend_prepared(&mut lab.db, workload, &set, budget, algo, &params)
            .expect("advise");
        let report = telemetry.report();
        for (name, s) in &report.latencies {
            push_latency_row(&mut t, algo.name(), name, s);
        }
        for root in &report.phases {
            push_phase_latency_rows(&mut t, algo.name(), root, "phase");
        }
    }
    t
}

fn push_latency_row(t: &mut Table, algo: &str, metric: &str, s: &xia_obs::HistSummary) {
    t.row(vec![
        algo.to_string(),
        metric.to_string(),
        s.count.to_string(),
        s.p50_ns.to_string(),
        s.p95_ns.to_string(),
        s.p99_ns.to_string(),
        s.max_ns.to_string(),
    ]);
}

fn push_phase_latency_rows(t: &mut Table, algo: &str, span: &xia_obs::SpanSnapshot, prefix: &str) {
    let path = format!("{prefix}:{}", span.name);
    push_latency_row(t, algo, &path, &span.latency);
    for child in &span.children {
        push_phase_latency_rows(t, algo, child, &path);
    }
}

/// Default budget fractions of the All-Index size used by the binaries.
pub const DEFAULT_FRACTIONS: [f64; 8] = [0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00, 1.25];
