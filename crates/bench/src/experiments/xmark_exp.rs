//! XMark experiment (the paper's secondary benchmark, reported in its
//! tech report): budget sweep over the XMark-like workload.

use crate::report::{f, mib, Table};
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_storage::Database;
use xia_workloads::xmark::{self, XmarkConfig};
use xia_workloads::Workload;

/// One measured point.
#[derive(Debug, Clone)]
pub struct XmarkPoint {
    /// Budget fraction of All-Index size.
    pub fraction: f64,
    /// Speedups per algorithm, aligned with `ALGOS`.
    pub speedups: Vec<f64>,
}

/// Algorithms compared.
pub const ALGOS: [SearchAlgorithm; 3] = [
    SearchAlgorithm::Greedy,
    SearchAlgorithm::GreedyHeuristics,
    SearchAlgorithm::TopDownFull,
];

/// Runs the sweep; returns the points plus the All-Index speedup and size.
pub fn run(cfg: &XmarkConfig, fractions: &[f64]) -> (Vec<XmarkPoint>, f64, u64) {
    let mut db = Database::new();
    xmark::generate(&mut db, cfg);
    let w = Workload::from_texts(xmark::queries(cfg).iter().map(|s| s.as_str()))
        .expect("xmark queries parse");
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &w, &params);
    let all = Advisor::all_index_config(&set);
    let all_size = set.config_size(&all);
    let mut ev = xia_advisor::BenefitEvaluator::new(&mut db, &w, &set);
    let all_speedup = ev.speedup(&all);
    drop(ev);

    let mut out = Vec::new();
    for &fraction in fractions {
        let budget = (all_size as f64 * fraction).round() as u64;
        let mut speedups = Vec::new();
        for algo in ALGOS {
            let rec = Advisor::recommend_prepared(&mut db, &w, &set, budget, algo, &params)
                .expect("advise");
            speedups.push(rec.speedup);
        }
        out.push(XmarkPoint { fraction, speedups });
    }
    (out, all_speedup, all_size)
}

/// Renders the table.
pub fn table(points: &[XmarkPoint], all_speedup: f64, all_size: u64) -> Table {
    let mut headers = vec!["budget (xAllIndex)".to_string()];
    for a in ALGOS {
        headers.push(a.name().to_string());
    }
    headers.push("all-index".to_string());
    let mut t = Table::new(
        &format!(
            "XMark — estimated speedup vs budget (All-Index = {} MiB)",
            mib(all_size)
        ),
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for p in points {
        let mut row = vec![format!("{:.2}", p.fraction)];
        for s in &p.speedups {
            row.push(f(*s));
        }
        row.push(f(all_speedup));
        t.row(row);
    }
    t
}

/// Default fractions.
pub const DEFAULT_FRACTIONS: [f64; 5] = [0.1, 0.25, 0.5, 1.0, 2.0];
