//! Parallel what-if evaluation: evaluation-phase wall time vs the
//! `--jobs` worker count.
//!
//! Candidate configurations are costed through immutable catalog overlays,
//! so per-statement Evaluate-mode optimizer calls fan out across worker
//! threads with no shared mutable state. The recommendation is a pure
//! function of the inputs — every row of this experiment must produce the
//! same configuration; only the timings may differ.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use xia_advisor::{Advisor, AdvisorParams, CandId, SearchAlgorithm};
use xia_obs::Telemetry;
use xia_workloads::Workload;

/// One measured worker count.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Worker threads used for benefit evaluation.
    pub jobs: usize,
    /// Advisor wall time in milliseconds.
    pub advisor_ms: f64,
    /// Evaluation-phase time (telemetry "evaluate" spans) in milliseconds.
    pub evaluate_ms: f64,
    /// Search-phase time (telemetry span) in milliseconds.
    pub search_ms: f64,
    /// Evaluate-mode optimizer calls (identical across rows).
    pub optimizer_calls: u64,
    /// Evaluation-phase speedup relative to the `jobs = 1` row.
    pub eval_speedup: f64,
    /// The recommended configuration (identical across rows).
    pub config: Vec<CandId>,
}

/// Runs the same recommendation at each worker count and reports the
/// phase timings. Panics if any worker count changes the recommendation —
/// that would be a determinism regression, not a measurement.
pub fn run(lab: &mut TpoxLab, workload: &Workload, jobs_list: &[usize]) -> Vec<ParallelRow> {
    let telemetry = Telemetry::new();
    let base = AdvisorParams {
        telemetry: telemetry.clone(),
        ..AdvisorParams::default()
    };
    let set = Advisor::prepare(&mut lab.db, workload, &base);
    let budget = set.config_size(&Advisor::all_index_config(&set)) / 2;

    let mut rows: Vec<ParallelRow> = Vec::new();
    for &jobs in jobs_list {
        let params = AdvisorParams {
            jobs,
            telemetry: telemetry.clone(),
            ..AdvisorParams::default()
        };
        telemetry.reset();
        let rec = Advisor::recommend_prepared(
            &mut lab.db,
            workload,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        if let Some(first) = rows.first() {
            assert_eq!(
                first.config, rec.config,
                "jobs={jobs} changed the recommendation"
            );
            assert_eq!(
                first.optimizer_calls, rec.eval_stats.optimizer_calls,
                "jobs={jobs} changed the optimizer-call count"
            );
        }
        let evaluate_ms = telemetry.span_micros("evaluate") as f64 / 1e3;
        let eval_speedup = rows
            .first()
            .map(|r| r.evaluate_ms / evaluate_ms.max(1e-9))
            .unwrap_or(1.0);
        rows.push(ParallelRow {
            jobs,
            advisor_ms: rec.advisor_time.as_secs_f64() * 1e3,
            evaluate_ms,
            search_ms: telemetry.span_micros("search") as f64 / 1e3,
            optimizer_calls: rec.eval_stats.optimizer_calls,
            eval_speedup,
            config: rec.config,
        });
    }
    rows
}

/// Renders the jobs-sweep table.
pub fn table(rows: &[ParallelRow]) -> Table {
    let mut t = Table::new(
        "Parallel what-if evaluation — phase timings vs worker count",
        &[
            "jobs",
            "advisor ms",
            "evaluate ms",
            "search ms",
            "optimizer calls",
            "eval speedup",
            "indexes",
        ],
    );
    for r in rows {
        t.row(vec![
            r.jobs.to_string(),
            f(r.advisor_ms),
            f(r.evaluate_ms),
            f(r.search_ms),
            r.optimizer_calls.to_string(),
            format!("{:.2}x", r.eval_speedup),
            r.config.len().to_string(),
        ]);
    }
    t
}

/// Default worker counts swept by the binary.
pub const DEFAULT_JOBS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_sweep_is_recommendation_invariant() {
        let mut lab = TpoxLab::quick();
        let workload = lab.mixed_workload(6);
        // run() itself panics if any worker count changes the
        // recommendation; this pins the experiment harness contract.
        let rows = run(&mut lab, &workload, &[1, 4, 8]);
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].config.is_empty());
        for r in &rows[1..] {
            assert_eq!(r.config, rows[0].config);
        }
    }
}
