//! E9 ablations: the design choices DESIGN.md calls out.
//!
//! * **Benefit-evaluation machinery** (paper Section VI-C): affected sets,
//!   sub-configuration decomposition, and the evaluation cache each reduce
//!   Evaluate-mode optimizer calls. Measured by running the same search
//!   with each switch disabled.
//! * **β sweep** (Section VI-A): the greedy-heuristics size-expansion
//!   threshold; the paper found β = 10% to work well.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use std::time::Instant;
use xia_advisor::{search, Advisor, AdvisorParams, BenefitEvaluator};

/// One ablation configuration result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which switches were on: (affected sets, sub-configs, cache,
    /// statement-relevance pruning).
    pub switches: (bool, bool, bool, bool),
    /// What-if worker threads used for the search.
    pub jobs: usize,
    /// Evaluate-mode optimizer calls during the search.
    pub optimizer_calls: u64,
    /// Wall time of the search in milliseconds.
    pub ms: f64,
    /// Benefit of the final configuration (sanity: should not change).
    pub benefit: f64,
    /// Sub-configuration cache hits (telemetry) during the search.
    pub cache_hits: u64,
    /// Sub-configuration cache misses (telemetry) during the search.
    pub cache_misses: u64,
    /// Per-statement costings served from the projection-keyed statement
    /// cost cache (telemetry) during the search.
    pub stmt_cache_hits: u64,
}

/// Runs greedy-with-heuristics under each combination of evaluator
/// switches, single- and multi-threaded (the all-on combo repeats at
/// `jobs = 4` so the table reports the parallel evaluation time
/// alongside the serial one). Pruning is disabled together with the
/// sub-configuration cache in the cache-ablation row so that row still
/// isolates the memo cache (the statement cache would otherwise absorb
/// most of the repeat evaluations the row exists to expose).
pub fn run_switches(lab: &mut TpoxLab) -> Vec<AblationRow> {
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let all: Vec<_> = set.ids().collect();
    let budget = set.config_size(&Advisor::all_index_config(&set));

    let combos = [
        (true, true, true, true, 1),
        (true, true, true, true, 4),
        (false, true, true, true, 1),
        (true, false, true, true, 1),
        (true, true, true, false, 1),
        (true, true, false, false, 1),
        (false, false, false, false, 1),
    ];
    let mut rows = Vec::new();
    for (aff, sub, cache, prune, jobs) in combos {
        let telemetry = xia_obs::Telemetry::new();
        let mut ev = BenefitEvaluator::new(&mut lab.db, &workload, &set);
        ev.set_telemetry(&telemetry);
        ev.set_jobs(jobs);
        ev.use_affected_sets = aff;
        ev.use_subconfigs = sub;
        ev.use_cache = cache;
        ev.prune = prune;
        let calls0 = ev.eval_stats().optimizer_calls;
        let start = Instant::now();
        let config = search::greedy_heuristics(&mut ev, &all, budget, params.beta);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let calls = ev.eval_stats().optimizer_calls - calls0;
        let cache_hits = telemetry.get(xia_obs::Counter::BenefitCacheHits);
        let cache_misses = telemetry.get(xia_obs::Counter::BenefitCacheMisses);
        let stmt_cache_hits = telemetry.get(xia_obs::Counter::StmtCacheHits);
        let benefit = ev.benefit(&config);
        rows.push(AblationRow {
            switches: (aff, sub, cache, prune),
            jobs,
            optimizer_calls: calls,
            ms,
            benefit,
            cache_hits,
            cache_misses,
            stmt_cache_hits,
        });
    }
    rows
}

/// Renders the switch-ablation table.
pub fn switches_table(rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        "Ablation — benefit-evaluation machinery (greedy+heuristics search)",
        &[
            "affected-sets",
            "sub-configs",
            "cache",
            "prune",
            "jobs",
            "optimizer calls",
            "ms",
            "benefit",
            "cache hits",
            "cache misses",
            "stmt cache hits",
        ],
    );
    for r in rows {
        t.row(vec![
            r.switches.0.to_string(),
            r.switches.1.to_string(),
            r.switches.2.to_string(),
            r.switches.3.to_string(),
            r.jobs.to_string(),
            r.optimizer_calls.to_string(),
            f(r.ms),
            f(r.benefit),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
            r.stmt_cache_hits.to_string(),
        ]);
    }
    t
}

/// One β-sweep result.
#[derive(Debug, Clone)]
pub struct BetaRow {
    /// β value.
    pub beta: f64,
    /// Generalized indexes recommended.
    pub general: usize,
    /// Specific indexes recommended.
    pub specific: usize,
    /// Estimated speedup.
    pub speedup: f64,
}

/// Sweeps β for greedy-with-heuristics at a generous budget.
pub fn run_beta(lab: &mut TpoxLab, betas: &[f64]) -> Vec<BetaRow> {
    let workload = lab.mixed_workload(9);
    let base_params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &base_params);
    let budget = 4 * set.config_size(&Advisor::all_index_config(&set));
    let mut rows = Vec::new();
    for &beta in betas {
        let params = AdvisorParams {
            beta,
            ..AdvisorParams::default()
        };
        let rec = Advisor::recommend_prepared(
            &mut lab.db,
            &workload,
            &set,
            budget,
            xia_advisor::SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        rows.push(BetaRow {
            beta,
            general: rec.general_count,
            specific: rec.specific_count,
            speedup: rec.speedup,
        });
    }
    rows
}

/// Renders the β-sweep table.
pub fn beta_table(rows: &[BetaRow]) -> Table {
    let mut t = Table::new(
        "Ablation — β sweep for the greedy-heuristics size condition",
        &["beta", "general", "specific", "speedup"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.beta),
            r.general.to_string(),
            r.specific.to_string(),
            f(r.speedup),
        ]);
    }
    t
}

/// Default β values.
pub const DEFAULT_BETAS: [f64; 6] = [0.0, 0.05, 0.10, 0.25, 0.50, 1.00];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ablation_shows_canonical_hit_rate() {
        let mut lab = TpoxLab::quick();
        let rows = run_switches(&mut lab);
        let by = |aff: bool, sub: bool, cache: bool, prune: bool, jobs: usize| {
            rows.iter()
                .find(|r| r.switches == (aff, sub, cache, prune) && r.jobs == jobs)
                .expect("combo present")
                .clone()
        };
        let cached = by(true, true, true, true, 1);
        let uncached = by(true, true, false, false, 1);
        // The cache must absorb repeat evaluations: strictly fewer
        // Evaluate-mode optimizer calls, same final benefit.
        assert!(
            cached.optimizer_calls < uncached.optimizer_calls,
            "cached={} uncached={}",
            cached.optimizer_calls,
            uncached.optimizer_calls
        );
        assert!((cached.benefit - uncached.benefit).abs() < 1e-6 * uncached.benefit.abs().max(1.0));
        // Canonical (sorted) keys: the greedy-heuristics search revisits
        // sub-configurations in many orders, so a healthy share of lookups
        // must hit. Insertion-order keys used to leave this near zero.
        let hit_rate =
            cached.cache_hits as f64 / (cached.cache_hits + cached.cache_misses).max(1) as f64;
        assert!(
            hit_rate > 0.25,
            "hit rate {hit_rate:.3} ({} hits / {} misses)",
            cached.cache_hits,
            cached.cache_misses
        );
        // The parallel all-on row is the same search: identical call count
        // and benefit, whatever the worker count.
        let par = by(true, true, true, true, 4);
        assert_eq!(par.optimizer_calls, cached.optimizer_calls);
        assert_eq!(par.cache_hits, cached.cache_hits);
        assert_eq!(par.cache_misses, cached.cache_misses);
        assert!((par.benefit - cached.benefit).abs() < 1e-12);
    }

    #[test]
    fn pruning_ablation_hits_statement_cache() {
        // The CI ablation gate: statement-relevance pruning must actually
        // serve costings from the projection-keyed statement cache (a
        // silent cache regression would leave this at zero), save
        // optimizer calls versus the unpruned row, and leave the final
        // benefit bitwise unchanged.
        let mut lab = TpoxLab::quick();
        let rows = run_switches(&mut lab);
        let by = |prune: bool| {
            rows.iter()
                .find(|r| r.switches == (true, true, true, prune) && r.jobs == 1)
                .expect("combo present")
                .clone()
        };
        let pruned = by(true);
        let unpruned = by(false);
        assert!(
            pruned.stmt_cache_hits > 0,
            "pruning never hit the statement cost cache"
        );
        assert!(
            pruned.optimizer_calls < unpruned.optimizer_calls,
            "pruned={} unpruned={}",
            pruned.optimizer_calls,
            unpruned.optimizer_calls
        );
        assert_eq!(
            pruned.benefit.to_bits(),
            unpruned.benefit.to_bits(),
            "pruning changed the search outcome"
        );
    }
}
