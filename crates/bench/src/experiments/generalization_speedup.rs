//! E12: semi-naive generalization — pair visits and wall time of the
//! naive Algorithm 1 fixpoint vs the bucketed, memoized semi-naive
//! fixpoint (`--no-fastpath` vs the default), at growing workload sizes.
//!
//! Both fixpoints run on clones of the same enumerated candidate set;
//! every row double-checks the parity contract: identical candidate
//! lists, DAG edge vectors (in stored order), and affected sets. The
//! `generalize_pairs_visited` counter is incremented by both paths for
//! every pair that reaches the rule engine, so its ratio is the honest
//! speedup factor (the semi-naive path's savings — bucket skips, the
//! unordered-pair dedup, memo hits — are itemized in their own columns).

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use std::time::Instant;
use xia_advisor::{
    generalize_set_fast, generalize_set_naive, Advisor, AdvisorParams, CandidateSet,
};
use xia_obs::{Counter, EventJournal, Telemetry};
use xia_workloads::Workload;

/// One workload-size comparison point.
#[derive(Debug, Clone)]
pub struct GeneralizationRow {
    /// Workload statements (the 11 TPoX queries plus synthetic widening).
    pub statements: usize,
    /// Basic candidates enumerated (the fixpoint's input size).
    pub basics: usize,
    /// Total candidates at fixpoint (basics + generalized).
    pub total: usize,
    /// Pairs the naive fixpoint ran the rule engine on.
    pub visits_naive: u64,
    /// Pairs the semi-naive fixpoint ran the rule engine on.
    pub visits_fast: u64,
    /// Naive fixpoint wall time, milliseconds.
    pub ms_naive: f64,
    /// Semi-naive fixpoint wall time, milliseconds.
    pub ms_fast: f64,
    /// Pairs never enumerated thanks to (collection, kind) buckets.
    pub skipped_bucket: u64,
    /// Rule-engine runs saved by the canonical-pair memo.
    pub memo_hits: u64,
    /// Whether the two fixpoints produced byte-identical candidate sets.
    pub identical: bool,
}

/// Full observable state of a candidate set, for parity comparison.
fn dump(set: &CandidateSet) -> Vec<String> {
    set.iter()
        .map(|c| {
            format!(
                "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
                c.id,
                c.collection,
                c.pattern,
                c.kind,
                c.origin,
                c.children,
                c.parents,
                c.affected.iter().collect::<Vec<_>>()
            )
        })
        .collect()
}

/// Measures one workload: enumerate once, run both fixpoints on clones.
pub fn measure(lab: &mut TpoxLab, workload: &Workload) -> GeneralizationRow {
    // Enumerate only — the fixpoints under test run outside `prepare`.
    let params = AdvisorParams {
        generalize: false,
        ..AdvisorParams::default()
    };
    let base = Advisor::prepare(&mut lab.db, workload, &params);
    let basics = base.len();

    let mut naive_set = base.clone();
    let t_naive = Telemetry::new();
    let start = Instant::now();
    generalize_set_naive(&mut naive_set, &t_naive, &EventJournal::off());
    let ms_naive = start.elapsed().as_secs_f64() * 1e3;

    let mut fast_set = base;
    let t_fast = Telemetry::new();
    let start = Instant::now();
    generalize_set_fast(&mut fast_set, &t_fast, &EventJournal::off());
    let ms_fast = start.elapsed().as_secs_f64() * 1e3;

    GeneralizationRow {
        statements: workload.len(),
        basics,
        total: fast_set.len(),
        visits_naive: t_naive.get(Counter::GeneralizePairsVisited),
        visits_fast: t_fast.get(Counter::GeneralizePairsVisited),
        ms_naive,
        ms_fast,
        skipped_bucket: t_fast.get(Counter::PairsSkippedBucket),
        memo_hits: t_fast.get(Counter::PairsMemoHits),
        identical: dump(&naive_set) == dump(&fast_set),
    }
}

/// Runs the comparison over widened Table III workloads: the 11 TPoX
/// queries plus `n` synthetic queries for each `n` in `widths`.
pub fn run(lab: &mut TpoxLab, widths: &[usize]) -> Vec<GeneralizationRow> {
    widths
        .iter()
        .map(|&n| {
            let workload = lab.mixed_workload(n);
            measure(lab, &workload)
        })
        .collect()
}

/// Renders the comparison table.
pub fn table(rows: &[GeneralizationRow]) -> Table {
    let mut t = Table::new(
        "E12 — semi-naive generalization: pair visits and wall time",
        &[
            "statements",
            "basics",
            "candidates",
            "visits (naive)",
            "visits (semi-naive)",
            "visit ratio",
            "ms (naive)",
            "ms (semi-naive)",
            "pairs skipped (bucket)",
            "memo hits",
            "identical",
        ],
    );
    for r in rows {
        let ratio = r.visits_naive as f64 / r.visits_fast.max(1) as f64;
        t.row(vec![
            r.statements.to_string(),
            r.basics.to_string(),
            r.total.to_string(),
            r.visits_naive.to_string(),
            r.visits_fast.to_string(),
            f(ratio),
            f(r.ms_naive),
            f(r.ms_fast),
            r.skipped_bucket.to_string(),
            r.memo_hits.to_string(),
            r.identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semi_naive_saves_pair_visits_and_preserves_sets() {
        let mut lab = TpoxLab::quick();
        let rows = run(&mut lab, &[0, 24]);
        for r in &rows {
            assert!(r.identical, "{} stmts: fixpoints diverged", r.statements);
            assert!(
                r.visits_fast < r.visits_naive,
                "{} stmts: fast={} naive={}",
                r.statements,
                r.visits_fast,
                r.visits_naive
            );
        }
        // The acceptance bar: ≥3× fewer rule-engine visits on the largest
        // workload (multiple collections and kinds give the buckets real
        // work on top of the unordered-pair halving).
        let last = rows.last().expect("rows");
        assert!(
            last.visits_naive as f64 >= 3.0 * last.visits_fast as f64,
            "expected ≥3x fewer visits: naive={} fast={}",
            last.visits_naive,
            last.visits_fast
        );
        assert!(last.skipped_bucket > 0, "buckets never skipped a pair");
    }
}
