//! E16: CoPhy workload compression + LP-relaxation scaling.
//!
//! Sweeps synthetic workloads from thousands to 100k statements and
//! compares the cophy search (compression on) against plain greedy on the
//! uncompressed workload: advisor wall time, evaluate-mode optimizer
//! calls, estimated benefit, and — for cophy — the LP certificate (the
//! fractional bound and the provable gap to it). On sizes small enough to
//! afford it, the DP knapsack over standalone benefits supplies the true
//! standalone optimum so the certificate can be checked against it.
//!
//! The paper-shaped claims E16 exists to demonstrate: cophy's call count
//! scales with the number of *templates* (roughly constant in statement
//! count once the template space saturates), so at 100k statements it
//! issues an order of magnitude fewer evaluate calls than greedy while
//! recommending a configuration of matched quality.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use xia_advisor::search::{cophy_with_outcome, dp_knapsack, standalone_benefits};
use xia_advisor::{Advisor, AdvisorParams, BenefitEvaluator, SearchAlgorithm};
use xia_obs::{Counter, Event, EventJournal, Telemetry};
use xia_workloads::Workload;

/// One (workload size, algorithm) measurement.
#[derive(Debug, Clone)]
pub struct CophyScaleRow {
    /// Original (uncompressed) statement count.
    pub n_statements: usize,
    /// Templates the compressor built (0 for non-cophy rows).
    pub templates: u64,
    /// Search algorithm measured.
    pub algo: SearchAlgorithm,
    /// Advisor wall time, milliseconds (prepare excluded — both
    /// algorithms share the same candidate set).
    pub wall_ms: f64,
    /// Evaluate-mode optimizer calls.
    pub evaluate_calls: u64,
    /// Estimated benefit of the recommendation.
    pub est_benefit: f64,
    /// LP fractional bound (cophy only; 0 otherwise).
    pub lp_bound: f64,
    /// Relative gap to the DP standalone optimum, percent; `NaN` when DP
    /// was skipped (large instances).
    pub dp_gap_pct: f64,
}

/// Measures one algorithm on one workload. The budget is half the
/// All-Index size — the regime where search actually has to choose.
/// Goes through [`Advisor::recommend`] so cophy's compression hook runs
/// and `advisor_time` covers the full pipeline (compress + prepare +
/// search), which is what "100k statements in seconds" must mean.
fn measure(
    lab: &mut TpoxLab,
    workload: &Workload,
    algo: SearchAlgorithm,
    budget: u64,
    with_dp: bool,
) -> CophyScaleRow {
    let telemetry = Telemetry::new();
    let journal = EventJournal::new();
    let params = AdvisorParams {
        telemetry: telemetry.clone(),
        journal: journal.clone(),
        ..AdvisorParams::default()
    };
    let rec = Advisor::recommend(&mut lab.db, workload, budget, algo, &params).expect("advise");
    let lp_bound = journal
        .events()
        .iter()
        .find_map(|(_, e)| match e {
            Event::LpRelaxed { bound, .. } => Some(*bound),
            _ => None,
        })
        .unwrap_or(0.0);
    let dp_gap_pct = if with_dp {
        // Score cophy's configuration and DP's in the same standalone
        // currency the certificate is stated in, over the original
        // (uncompressed) workload.
        let set = Advisor::prepare(&mut lab.db, workload, &params);
        let all: Vec<_> = set.ids().collect();
        let mut ev = BenefitEvaluator::new(&mut lab.db, workload, &set);
        let benefits = standalone_benefits(&mut ev, &all);
        let out = cophy_with_outcome(&mut ev, &all, budget);
        let d = dp_knapsack(&mut ev, &all, budget);
        let dp_value: f64 = d.iter().map(|id| benefits[id]).sum();
        if dp_value > 0.0 {
            ((dp_value - out.value) / dp_value * 100.0).max(0.0)
        } else {
            0.0
        }
    } else {
        f64::NAN
    };
    CophyScaleRow {
        n_statements: workload.len(),
        templates: telemetry.get(Counter::TemplatesBuilt),
        algo,
        wall_ms: rec.advisor_time.as_secs_f64() * 1e3,
        evaluate_calls: telemetry.get(Counter::OptimizerEvaluateCalls),
        est_benefit: rec.est_benefit,
        lp_bound,
        dp_gap_pct,
    }
}

/// Runs the sweep: for each size, every algorithm in `algos` on the same
/// synthetic workload. DP cross-checks run only on sizes `<= dp_max`.
pub fn run(
    lab: &mut TpoxLab,
    sizes: &[usize],
    algos: &[SearchAlgorithm],
    dp_max: usize,
) -> Vec<CophyScaleRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let workload = lab.synthetic_workload(n, 0xE16 ^ n as u64);
        // Budget from a shared prepare pass so every algorithm answers
        // the same question; the timed runs re-prepare internally.
        let set = Advisor::prepare(&mut lab.db, &workload, &AdvisorParams::default());
        let budget = set.config_size(&Advisor::all_index_config(&set)) / 2;
        for &algo in algos {
            let with_dp = algo == SearchAlgorithm::Cophy && n <= dp_max;
            rows.push(measure(lab, &workload, algo, budget, with_dp));
        }
    }
    rows
}

/// Renders the sweep table (also the `results/cophy_scaling.csv` schema).
pub fn table(rows: &[CophyScaleRow]) -> Table {
    let mut t = Table::new(
        "E16 — CoPhy compression + LP relaxation: scaling to 100k statements",
        &[
            "n_statements",
            "templates",
            "algo",
            "wall_ms",
            "evaluate_calls",
            "est_benefit",
            "lp_bound",
            "dp_gap_pct",
        ],
    );
    for r in rows {
        t.row(vec![
            r.n_statements.to_string(),
            r.templates.to_string(),
            r.algo.name().to_string(),
            f(r.wall_ms),
            r.evaluate_calls.to_string(),
            f(r.est_benefit),
            f(r.lp_bound),
            if r.dp_gap_pct.is_nan() {
                "-".to_string()
            } else {
                f(r.dp_gap_pct)
            },
        ]);
    }
    t
}
