//! E11: statement-relevance pruning — what-if optimizer calls and
//! wall-clock with the pruning layer on vs `--no-prune`, over the Fig. 3
//! budget sweep.
//!
//! Every row double-checks the core invariant: the pruned and unpruned
//! runs return bitwise-identical benefit estimates (the determinism suite
//! pins the same property across jobs, faults, and budgets).

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_obs::{Counter, Telemetry};
use xia_workloads::Workload;

/// One (algorithm, budget) comparison point.
#[derive(Debug, Clone)]
pub struct PruningRow {
    /// Search algorithm measured.
    pub algo: SearchAlgorithm,
    /// Budget as a fraction of the All-Index size.
    pub fraction: f64,
    /// Evaluate-mode optimizer calls with pruning on.
    pub calls_pruned: u64,
    /// Evaluate-mode optimizer calls with pruning off.
    pub calls_unpruned: u64,
    /// Advisor wall time with pruning on, milliseconds.
    pub ms_pruned: f64,
    /// Advisor wall time with pruning off, milliseconds.
    pub ms_unpruned: f64,
    /// Statement-cache serves during the pruned run.
    pub stmt_cache_hits: u64,
    /// Costings the pruning layer skipped entirely.
    pub statements_pruned: u64,
    /// Incremental `benefit_delta` probes issued by the search.
    pub delta_probes: u64,
    /// Whether the two runs returned bitwise-identical benefit estimates.
    pub identical: bool,
}

fn measure(
    lab: &mut TpoxLab,
    workload: &Workload,
    set: &xia_advisor::CandidateSet,
    budget: u64,
    algo: SearchAlgorithm,
    prune: bool,
) -> (u64, f64, u64, Telemetry) {
    let telemetry = Telemetry::new();
    let params = AdvisorParams {
        prune,
        telemetry: telemetry.clone(),
        ..AdvisorParams::default()
    };
    let rec = Advisor::recommend_prepared(&mut lab.db, workload, set, budget, algo, &params)
        .expect("advise");
    (
        telemetry.get(Counter::OptimizerEvaluateCalls),
        rec.advisor_time.as_secs_f64() * 1e3,
        rec.est_benefit.to_bits(),
        telemetry,
    )
}

/// Runs the prune-on/prune-off comparison over a budget sweep.
pub fn run(
    lab: &mut TpoxLab,
    workload: &Workload,
    fractions: &[f64],
    algorithms: &[SearchAlgorithm],
) -> Vec<PruningRow> {
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, workload, &params);
    let all_index_size = set.config_size(&Advisor::all_index_config(&set));
    let mut rows = Vec::new();
    for &algo in algorithms {
        for &frac in fractions {
            let budget = (all_index_size as f64 * frac).round() as u64;
            let (calls_on, ms_on, bits_on, tel_on) =
                measure(lab, workload, &set, budget, algo, true);
            let (calls_off, ms_off, bits_off, _) =
                measure(lab, workload, &set, budget, algo, false);
            rows.push(PruningRow {
                algo,
                fraction: frac,
                calls_pruned: calls_on,
                calls_unpruned: calls_off,
                ms_pruned: ms_on,
                ms_unpruned: ms_off,
                stmt_cache_hits: tel_on.get(Counter::StmtCacheHits),
                statements_pruned: tel_on.get(Counter::StatementsPruned),
                delta_probes: tel_on.get(Counter::DeltaProbes),
                identical: bits_on == bits_off,
            });
        }
    }
    rows
}

/// Renders the comparison table.
pub fn table(rows: &[PruningRow]) -> Table {
    let mut t = Table::new(
        "E11 — statement-relevance pruning: what-if calls and wall time",
        &[
            "algorithm",
            "budget (xAllIndex)",
            "calls (pruned)",
            "calls (no-prune)",
            "call ratio",
            "ms (pruned)",
            "ms (no-prune)",
            "stmt cache hits",
            "statements pruned",
            "delta probes",
            "identical",
        ],
    );
    for r in rows {
        let ratio = r.calls_unpruned as f64 / (r.calls_pruned.max(1)) as f64;
        t.row(vec![
            r.algo.name().to_string(),
            format!("{:.2}", r.fraction),
            r.calls_pruned.to_string(),
            r.calls_unpruned.to_string(),
            f(ratio),
            f(r.ms_pruned),
            f(r.ms_unpruned),
            r.stmt_cache_hits.to_string(),
            r.statements_pruned.to_string(),
            r.delta_probes.to_string(),
            r.identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_saves_calls_and_preserves_results() {
        // Relevance pruning pays off when candidate relevance sets
        // overlap: each what-if probe's configuration group then spans
        // many statements the probed candidate is irrelevant to. The
        // anchored sparse workload is exactly that regime (and what the
        // E11 binary measures).
        let mut lab = TpoxLab::quick();
        let workload = lab.sparse_workload(96);
        let rows = run(
            &mut lab,
            &workload,
            &[0.75],
            &[SearchAlgorithm::Greedy, SearchAlgorithm::GreedyHeuristics],
        );
        for r in &rows {
            assert!(r.identical, "{:?}: pruning changed the benefit", r.algo);
            assert!(
                r.calls_pruned <= r.calls_unpruned,
                "{:?}: pruned={} unpruned={}",
                r.algo,
                r.calls_pruned,
                r.calls_unpruned
            );
        }
        // The incremental searches are where relevance pruning pays: the
        // acceptance bar is ≥3× fewer Evaluate-mode calls.
        let h = rows
            .iter()
            .find(|r| r.algo == SearchAlgorithm::GreedyHeuristics)
            .expect("heuristics row");
        assert!(
            h.calls_unpruned as f64 >= 3.0 * h.calls_pruned as f64,
            "expected ≥3x fewer calls: pruned={} unpruned={}",
            h.calls_pruned,
            h.calls_unpruned
        );
        assert!(h.stmt_cache_hits > 0);
        assert!(h.delta_probes > 0);
    }
}
