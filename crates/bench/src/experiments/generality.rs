//! Table IV: number of general (G) and specific (S) indexes recommended
//! by greedy-with-heuristics, top-down lite, and top-down full, across
//! disk budgets.
//!
//! Shape to reproduce: heuristics recommends (almost) no general indexes;
//! top-down recommends more general indexes the more budget it has, until
//! at large budgets the configuration is all generals.

use crate::lab::TpoxLab;
use crate::report::Table;
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};

/// One cell of Table IV.
#[derive(Debug, Clone, Copy)]
pub struct GsCounts {
    /// Generalized indexes recommended.
    pub general: usize,
    /// Specific (basic) indexes recommended.
    pub specific: usize,
}

/// One row: a budget plus the three algorithms' counts.
#[derive(Debug, Clone)]
pub struct GeneralityRow {
    /// Budget as a multiple of the All-Index size.
    pub fraction: f64,
    /// (algorithm, counts) per algorithm.
    pub counts: Vec<(SearchAlgorithm, GsCounts)>,
}

/// The algorithms Table IV compares.
pub const ALGOS: [SearchAlgorithm; 3] = [
    SearchAlgorithm::TopDownLite,
    SearchAlgorithm::TopDownFull,
    SearchAlgorithm::GreedyHeuristics,
];

/// Runs the experiment on the mixed (11 TPoX + 9 synthetic) workload.
pub fn run(lab: &mut TpoxLab, fractions: &[f64]) -> Vec<GeneralityRow> {
    let workload = lab.mixed_workload(9);
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let all_size = set.config_size(&Advisor::all_index_config(&set));
    let mut rows = Vec::new();
    for &fraction in fractions {
        let budget = (all_size as f64 * fraction).round() as u64;
        let mut counts = Vec::new();
        for algo in ALGOS {
            let rec =
                Advisor::recommend_prepared(&mut lab.db, &workload, &set, budget, algo, &params)
                    .expect("advise");
            counts.push((
                algo,
                GsCounts {
                    general: rec.general_count,
                    specific: rec.specific_count,
                },
            ));
        }
        rows.push(GeneralityRow { fraction, counts });
    }
    rows
}

/// Renders Table IV.
pub fn table(rows: &[GeneralityRow]) -> Table {
    let mut headers = vec!["budget (xAllIndex)".to_string()];
    for algo in ALGOS {
        headers.push(format!("{} G:S", algo.name()));
    }
    let mut t = Table::new(
        "Table IV — number of general (G) and specific (S) indexes recommended",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for row in rows {
        let mut cells = vec![format!("{:.2}", row.fraction)];
        for (_, c) in &row.counts {
            cells.push(format!("G: {}, S: {}", c.general, c.specific));
        }
        t.row(cells);
    }
    t
}

/// Budget multiples mirroring the paper's 100 MB–2000 MB sweep against a
/// 95 MB All-Index size.
pub const DEFAULT_FRACTIONS: [f64; 4] = [1.05, 5.0, 10.0, 21.0];
