//! Figures 4 and 5: generalization to unseen queries.
//!
//! Train the advisor on the first `n` queries of a 20-query workload (11
//! TPoX + 9 synthetic), evaluate the recommended configuration on the
//! full workload. Fig. 4 uses estimated costs; Fig. 5 executes the
//! workload physically. Shape to reproduce: top-down closes the gap to
//! All-Index much faster than greedy-with-heuristics, because its general
//! indexes cover queries the training prefix never showed.

use crate::lab::{actual_execution, estimated_workload_cost, TpoxLab};
use crate::report::{f, Table};
use xia_advisor::{Advisor, AdvisorParams, CandidateSet, SearchAlgorithm};
use xia_workloads::Workload;

/// One training-size measurement.
#[derive(Debug, Clone)]
pub struct TrainPoint {
    /// Training-prefix length.
    pub train_size: usize,
    /// Estimated (Fig. 4) or actual (Fig. 5) speedup on the test workload
    /// per algorithm, aligned with [`GeneralizationResult::algorithms`].
    pub speedups: Vec<f64>,
}

/// Results of the train/test experiment.
#[derive(Debug, Clone)]
pub struct GeneralizationResult {
    /// Algorithms measured.
    pub algorithms: Vec<SearchAlgorithm>,
    /// All-Index speedup on the test workload (the ceiling).
    pub all_index: f64,
    /// Measurements per training size.
    pub points: Vec<TrainPoint>,
    /// Whether speedups are actual (executed) rather than estimated.
    pub actual: bool,
}

/// The two algorithms the paper plots (top-down full behaves like lite
/// here, as the paper notes).
pub const ALGOS: [SearchAlgorithm; 2] = [
    SearchAlgorithm::TopDownLite,
    SearchAlgorithm::GreedyHeuristics,
];

fn test_cost_estimated(
    lab: &mut TpoxLab,
    test: &Workload,
    set: &CandidateSet,
    config: &[xia_advisor::CandId],
) -> f64 {
    estimated_workload_cost(&mut lab.db, test, set, config)
}

/// Runs the experiment. `train_sizes` are prefix lengths of the 20-query
/// workload; `budget_multiple` scales the All-Index size (the paper's
/// 2 GB budget is ~21× its 95 MB All-Index size).
pub fn run(
    lab: &mut TpoxLab,
    train_sizes: &[usize],
    budget_multiple: f64,
    actual: bool,
) -> GeneralizationResult {
    let test = lab.mixed_workload(9);
    let params = AdvisorParams::default();

    // Ceiling: All-Index over the full test workload.
    let test_set = Advisor::prepare(&mut lab.db, &test, &params);
    let test_all = Advisor::all_index_config(&test_set);
    let all_size = test_set.config_size(&test_all);
    let budget = (all_size as f64 * budget_multiple).round() as u64;

    let (baseline, all_index) = if actual {
        let base = actual_execution(&mut lab.db, &test, &test_set, &[]);
        let allx = actual_execution(&mut lab.db, &test, &test_set, &test_all);
        (
            base.elapsed.as_secs_f64(),
            base.elapsed.as_secs_f64() / allx.elapsed.as_secs_f64().max(1e-9),
        )
    } else {
        let base = test_cost_estimated(lab, &test, &test_set, &[]);
        let allx = test_cost_estimated(lab, &test, &test_set, &test_all);
        (base, base / allx.max(1e-9))
    };

    let mut points = Vec::new();
    for &n in train_sizes {
        let train = test.prefix(n.max(1));
        let set = Advisor::prepare(&mut lab.db, &train, &params);
        let mut speedups = Vec::new();
        for algo in ALGOS {
            let rec = Advisor::recommend_prepared(&mut lab.db, &train, &set, budget, algo, &params)
                .expect("advise");
            let speedup = if actual {
                let run = actual_execution(&mut lab.db, &test, &set, &rec.config);
                baseline / run.elapsed.as_secs_f64().max(1e-9)
            } else {
                let cost = test_cost_estimated(lab, &test, &set, &rec.config);
                baseline / cost.max(1e-9)
            };
            speedups.push(speedup);
        }
        points.push(TrainPoint {
            train_size: n,
            speedups,
        });
    }
    GeneralizationResult {
        algorithms: ALGOS.to_vec(),
        all_index,
        points,
        actual,
    }
}

/// Renders the figure as a table (Fig. 4 or Fig. 5 depending on
/// `result.actual`).
pub fn table(r: &GeneralizationResult) -> Table {
    let title = if r.actual {
        "Fig. 5 — actual speedup on test workload vs training size"
    } else {
        "Fig. 4 — estimated speedup on test workload vs training size"
    };
    let mut headers = vec!["train queries".to_string()];
    for a in &r.algorithms {
        headers.push(a.name().to_string());
    }
    headers.push("all-index".to_string());
    let mut t = Table::new(
        title,
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for p in &r.points {
        let mut row = vec![p.train_size.to_string()];
        for s in &p.speedups {
            row.push(f(*s));
        }
        row.push(f(r.all_index));
        t.row(row);
    }
    t
}

/// Default training sizes (the paper sweeps 1..20).
pub fn default_train_sizes() -> Vec<usize> {
    (1..=20).collect()
}
