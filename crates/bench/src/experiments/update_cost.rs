//! Maintenance-cost experiment (the paper demonstrates in its tech report
//! that the advisor "accurately takes into account the cost of index
//! maintenance when making its recommendations").
//!
//! The 11-query TPoX workload is combined with the update mix at growing
//! frequencies. As updates dominate, the benefit of each index is eroded
//! by its `mc(x, s)` maintenance charge and the advisor recommends fewer
//! and smaller indexes.

use crate::lab::TpoxLab;
use crate::report::{f, Table};
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_workloads::tpox;
use xia_workloads::Workload;

/// One measured row.
#[derive(Debug, Clone)]
pub struct UpdateCostRow {
    /// Frequency multiplier applied to the update statements.
    pub update_freq: f64,
    /// Indexes recommended.
    pub indexes: usize,
    /// Total configuration size.
    pub size: u64,
    /// Estimated benefit (can approach zero as updates dominate).
    pub benefit: f64,
    /// Estimated speedup on the mixed workload.
    pub speedup: f64,
}

/// Runs the sweep at a fixed (All-Index-sized) budget.
pub fn run(lab: &mut TpoxLab, update_freqs: &[f64]) -> Vec<UpdateCostRow> {
    let params = AdvisorParams::default();
    let query_texts = tpox::queries(&lab.cfg);
    let update_texts = tpox::update_mix(&lab.cfg);
    let mut rows = Vec::new();
    for &freq in update_freqs {
        let mut w = Workload::new();
        for q in &query_texts {
            w.push(q).expect("query parses");
        }
        if freq > 0.0 {
            for u in &update_texts {
                w.push_with_freq(u, freq).expect("update parses");
            }
        }
        let set = Advisor::prepare(&mut lab.db, &w, &params);
        let budget = set.config_size(&Advisor::all_index_config(&set));
        let rec = Advisor::recommend_prepared(
            &mut lab.db,
            &w,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
        .expect("advise");
        rows.push(UpdateCostRow {
            update_freq: freq,
            indexes: rec.indexes.len(),
            size: rec.total_size,
            benefit: rec.est_benefit,
            speedup: rec.speedup,
        });
    }
    rows
}

/// Renders the table.
pub fn table(rows: &[UpdateCostRow]) -> Table {
    let mut t = Table::new(
        "Maintenance cost — recommendations vs update frequency (greedy+heuristics)",
        &["update freq", "indexes", "size (B)", "benefit", "speedup"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}", r.update_freq),
            r.indexes.to_string(),
            r.size.to_string(),
            f(r.benefit),
            f(r.speedup),
        ]);
    }
    t
}

/// Default update-frequency sweep.
pub const DEFAULT_FREQS: [f64; 5] = [0.0, 1.0, 10.0, 100.0, 1000.0];
