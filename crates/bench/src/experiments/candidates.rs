//! Table III: number of basic candidate indexes vs total candidates after
//! generalization, for synthetic workloads of growing size.
//!
//! The paper reports, on random-XPath workloads of 10–50 queries, basic
//! counts close to the query count and an expansion of "up to 50%" from
//! generalization.

use crate::lab::TpoxLab;
use crate::report::Table;
use xia_advisor::{enumerate_candidates, generalize_set};

/// One measured row.
#[derive(Debug, Clone, Copy)]
pub struct CandidateCounts {
    /// Number of synthetic queries.
    pub queries: usize,
    /// Basic candidates enumerated by the optimizer.
    pub basic: usize,
    /// Total candidates after generalization.
    pub total: usize,
}

/// Runs the experiment for the given workload sizes.
pub fn run(lab: &mut TpoxLab, sizes: &[usize]) -> Vec<CandidateCounts> {
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let w = lab.synthetic_workload(n, 1000 + i as u64);
        let mut set = enumerate_candidates(&mut lab.db, &w);
        let basic = set.len();
        generalize_set(&mut set);
        out.push(CandidateCounts {
            queries: n,
            basic,
            total: set.len(),
        });
    }
    out
}

/// Renders Table III.
pub fn table(rows: &[CandidateCounts]) -> Table {
    let mut t = Table::new(
        "Table III — number of candidate indexes (synthetic workloads)",
        &["queries", "basic cands.", "total cands.", "expansion %"],
    );
    for r in rows {
        let exp = if r.basic == 0 {
            0.0
        } else {
            100.0 * (r.total - r.basic) as f64 / r.basic as f64
        };
        t.row(vec![
            r.queries.to_string(),
            r.basic.to_string(),
            r.total.to_string(),
            format!("{exp:.0}"),
        ]);
    }
    t
}

/// The paper's workload sizes.
pub const DEFAULT_SIZES: [usize; 5] = [10, 20, 30, 40, 50];
