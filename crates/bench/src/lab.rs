//! Shared experiment environment: a TPoX database plus workload builders
//! and what-if / execution helpers used by several experiments.

use std::time::{Duration, Instant};
use xia_advisor::{CandId, CandidateSet};
use xia_optimizer::{execute_query, Optimizer};
use xia_storage::Database;
use xia_workloads::synthetic::{self, SyntheticConfig};
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::Workload;

/// A TPoX-populated database with the benchmark workloads.
pub struct TpoxLab {
    /// The populated database.
    pub db: Database,
    /// Generator configuration used.
    pub cfg: TpoxConfig,
}

impl TpoxLab {
    /// Builds a lab at the given configuration.
    pub fn new(cfg: TpoxConfig) -> Self {
        let mut db = Database::new();
        tpox::generate(&mut db, &cfg);
        Self { db, cfg }
    }

    /// A small lab for tests (fast even in debug builds).
    pub fn quick() -> Self {
        Self::new(TpoxConfig::tiny())
    }

    /// The standard experiment lab. Scale with `XIA_SCALE` (default 1).
    pub fn standard() -> Self {
        let scale: usize = std::env::var("XIA_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        Self::new(TpoxConfig::scaled(scale.max(1)))
    }

    /// The 11-query TPoX workload.
    pub fn workload(&self) -> Workload {
        Workload::from_texts(tpox::queries(&self.cfg).iter().map(|s| s.as_str()))
            .expect("generated queries parse")
    }

    /// The 11 queries plus the update mix.
    pub fn workload_with_updates(&self) -> Workload {
        let mut texts = tpox::queries(&self.cfg);
        texts.extend(tpox::update_mix(&self.cfg));
        Workload::from_texts(texts.iter().map(|s| s.as_str())).expect("generated texts parse")
    }

    /// `n` synthetic queries over the security collection.
    pub fn synthetic_workload(&self, n: usize, seed: u64) -> Workload {
        let coll = self
            .db
            .collection(tpox::SECURITY_COLL)
            .expect("lab has SDOC");
        let texts = synthetic::generate_queries(
            coll,
            &SyntheticConfig {
                queries: n,
                seed,
                ..Default::default()
            },
        );
        Workload::from_texts(texts.iter().map(|s| s.as_str())).expect("synthetic queries parse")
    }

    /// The paper's Fig. 4/5 workload: the 11 TPoX queries followed by `n`
    /// synthetic queries "to increase workload diversity".
    pub fn mixed_workload(&self, n_synth: usize) -> Workload {
        self.workload()
            .concat(&self.synthetic_workload(n_synth, 0xd1f7))
    }

    /// The E11 "sparse" workload: `n` anchored two-predicate synthetic
    /// queries over the security collection. Nearly every statement
    /// shares one anchor predicate while carrying a distinct second
    /// predicate, so candidate relevance sets overlap heavily — the
    /// regime where statement-relevance pruning pays (each what-if probe
    /// touches a configuration group spanning many statements, of which
    /// only a few are relevant to the probed candidate).
    pub fn sparse_workload(&self, n: usize) -> Workload {
        let coll = self
            .db
            .collection(tpox::SECURITY_COLL)
            .expect("lab has SDOC");
        let texts = synthetic::generate_queries(
            coll,
            &SyntheticConfig {
                queries: n,
                seed: 0x5aa5,
                wildcard_prob: 0.0,
                anchor_prob: 0.9,
                ..Default::default()
            },
        );
        Workload::from_texts(texts.iter().map(|s| s.as_str())).expect("sparse queries parse")
    }
}

/// Estimated total (frequency-weighted) workload cost with the given
/// candidate configuration installed as virtual indexes. Restores the
/// catalogs (no virtual indexes) before returning.
pub fn estimated_workload_cost(
    db: &mut Database,
    workload: &Workload,
    set: &CandidateSet,
    config: &[CandId],
) -> f64 {
    db.runstats_all();
    install_virtuals(db, set, config);
    let mut total = 0.0;
    for entry in workload.entries() {
        let coll = entry.statement.collection();
        let Some((collection, catalog, stats)) = db.parts(coll) else {
            continue;
        };
        let optimizer = Optimizer::new(collection, stats, catalog);
        total += entry.freq * optimizer.optimize(&entry.statement).total_cost;
    }
    install_virtuals(db, set, &[]);
    total
}

fn install_virtuals(db: &mut Database, set: &CandidateSet, config: &[CandId]) {
    let names: Vec<String> = db
        .collection_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    for name in &names {
        if let Some(cat) = db.catalog_mut(name) {
            cat.drop_all_virtual();
        }
    }
    for &id in config {
        let c = set.get(id);
        let (pattern, kind, coll) = (c.pattern.clone(), c.kind, c.collection.clone());
        if let Some((collection, catalog, stats)) = db.parts_mut(&coll) {
            catalog.create_virtual(collection, stats, &pattern, kind);
        }
    }
}

/// Rounds per actual-execution measurement (fastest kept).
pub const EXEC_ROUNDS: usize = 3;

/// Result of a physical execution run.
#[derive(Debug, Clone, Default)]
pub struct ExecRun {
    /// Total wall time over all query statements.
    pub elapsed: Duration,
    /// Total documents matched.
    pub docs: u64,
    /// Total nodes visited.
    pub nodes: u64,
    /// Statements that used at least one index in their plan.
    pub indexed_statements: usize,
}

/// Executes all *query* statements of a workload physically under the
/// given configuration (materialized as physical indexes), measuring wall
/// time — the paper's actual-speedup measurement. Runs the workload
/// [`EXEC_ROUNDS`] times and keeps the fastest round to suppress timing
/// noise. Drops every index before returning.
pub fn actual_execution(
    db: &mut Database,
    workload: &Workload,
    set: &CandidateSet,
    config: &[CandId],
) -> ExecRun {
    // Clean slate, then materialize.
    let names: Vec<String> = db
        .collection_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    for name in &names {
        if let Some(cat) = db.catalog_mut(name) {
            cat.drop_all();
        }
    }
    xia_advisor::Advisor::materialize(db, set, config);
    db.runstats_all();

    let mut run = ExecRun::default();
    let mut best = Duration::MAX;
    for round in 0..EXEC_ROUNDS {
        let mut round_run = ExecRun::default();
        let start = Instant::now();
        for entry in workload.entries() {
            if entry.statement.is_modification() {
                continue;
            }
            let coll = entry.statement.collection();
            let Some((collection, catalog, stats)) = db.parts(coll) else {
                continue;
            };
            let optimizer = Optimizer::new(collection, stats, catalog);
            let plan = optimizer.optimize(&entry.statement);
            if plan.uses_indexes() {
                round_run.indexed_statements += 1;
            }
            let reps = entry.freq.max(1.0) as usize;
            for _ in 0..reps {
                let result = execute_query(&entry.statement, &plan, collection, catalog)
                    .expect("physical plans execute");
                round_run.docs += result.docs_matched;
                round_run.nodes += result.nodes_visited;
            }
        }
        let elapsed = start.elapsed();
        if round == 0 {
            run = round_run;
        }
        best = best.min(elapsed);
    }
    run.elapsed = best;

    for name in &names {
        if let Some(cat) = db.catalog_mut(name) {
            cat.drop_all();
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_advisor::{Advisor, AdvisorParams};

    #[test]
    fn lab_builds_and_workloads_parse() {
        let lab = TpoxLab::quick();
        assert_eq!(lab.workload().len(), 11);
        assert_eq!(lab.workload_with_updates().len(), 15);
        assert_eq!(lab.mixed_workload(9).len(), 20);
        assert_eq!(lab.synthetic_workload(5, 1).len(), 5);
    }

    #[test]
    fn estimated_cost_drops_with_indexes() {
        let mut lab = TpoxLab::quick();
        let w = lab.workload();
        let set = Advisor::prepare(&mut lab.db, &w, &AdvisorParams::default());
        let all = Advisor::all_index_config(&set);
        let base = estimated_workload_cost(&mut lab.db, &w, &set, &[]);
        let with = estimated_workload_cost(&mut lab.db, &w, &set, &all);
        assert!(with < base, "with={with} base={base}");
    }

    #[test]
    fn actual_execution_speeds_up_with_indexes() {
        let mut lab = TpoxLab::quick();
        let w = lab.workload();
        let set = Advisor::prepare(&mut lab.db, &w, &AdvisorParams::default());
        let all = Advisor::all_index_config(&set);
        let baseline = actual_execution(&mut lab.db, &w, &set, &[]);
        let indexed = actual_execution(&mut lab.db, &w, &set, &all);
        assert_eq!(baseline.indexed_statements, 0);
        assert!(indexed.indexed_statements > 5);
        // Results agree regardless of plan shape.
        assert_eq!(baseline.docs, indexed.docs);
        // Far less navigation with indexes.
        assert!(indexed.nodes * 2 < baseline.nodes);
    }
}
