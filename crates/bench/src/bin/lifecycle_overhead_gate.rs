//! Overhead gate for the run-lifecycle layer, meant for CI: exits
//! non-zero if the disabled-by-default `RunController` measurably slows
//! the advisor down.
//!
//! Two legs:
//!
//! * **Macro**: a full advisor run with the controller off (the
//!   production default) versus the same run with a controller carrying
//!   a generous deadline that never fires. The controlled run must stay
//!   within the tolerance of the baseline — polls are coordinator-side
//!   and amortized over whole evaluation batches.
//! * **Micro**: the disabled-handle `RunController::poll` must cost no
//!   more than the established disabled-handle floor, measured against
//!   `Telemetry::incr` on an off handle (both are a branch on `None`).
//!   A small absolute slack absorbs timer noise at the ~1 ns scale.
//!
//! Timing is noisy on shared CI runners, so the gate retries a few
//! rounds and fails only if every round regresses. `XIA_GATE_TOLERANCE`
//! overrides the relative tolerance (default 0.05 = 5%).

use std::time::Instant;
use xia_advisor::{Advisor, AdvisorParams, RunController, SearchAlgorithm};
use xia_bench::TpoxLab;
use xia_obs::{Counter, Telemetry};

const ROUNDS: usize = 5;
const MICRO_ITERS: u32 = 5_000_000;
/// Absolute slack for the micro comparison, nanoseconds: both sides are
/// sub-nanosecond branches, so a fixed budget absorbs timer granularity.
const MICRO_SLACK_NS: f64 = 1.0;
/// A deadline far beyond any run in this gate: the controller is fully
/// armed (polls check the clock) but never fires.
const GENEROUS_DEADLINE_MS: u64 = 600_000;

fn tolerance() -> f64 {
    std::env::var("XIA_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// One full advisor run; returns wall seconds.
fn advise_secs(lab: &mut TpoxLab, ctl: RunController) -> f64 {
    let workload = lab.workload();
    let params = AdvisorParams {
        telemetry: Telemetry::off(),
        ctl,
        ..AdvisorParams::default()
    };
    let t0 = Instant::now();
    let rec = Advisor::recommend(
        &mut lab.db,
        &workload,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    std::hint::black_box(rec.speedup);
    t0.elapsed().as_secs_f64()
}

/// Mean cost of `f` in nanoseconds over a tight loop.
fn micro_mean_ns(f: impl Fn()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..MICRO_ITERS {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / f64::from(MICRO_ITERS)
}

fn main() {
    let tol = tolerance();
    let mut lab = TpoxLab::standard();
    // Warm-up: fault the caches and code paths in before timing.
    advise_secs(&mut lab, RunController::off());

    let mut pass = false;
    for round in 1..=ROUNDS {
        let base = advise_secs(&mut lab, RunController::off());
        let with_ctl = advise_secs(
            &mut lab,
            RunController::new().with_deadline_ms(GENEROUS_DEADLINE_MS),
        );

        let off_ctl = RunController::off();
        let poll_ns = micro_mean_ns(|| {
            std::hint::black_box(off_ctl.poll());
        });
        let off_telemetry = Telemetry::off();
        let incr_ns = micro_mean_ns(|| {
            off_telemetry.incr(std::hint::black_box(Counter::GreedyIterations));
        });

        let macro_ok = with_ctl <= base * (1.0 + tol);
        let micro_ok = poll_ns <= incr_ns * (1.0 + tol) + MICRO_SLACK_NS;
        println!(
            "round {round}: advise off {:.1} ms, controller-on {:.1} ms ({:+.1}%) [{}]; \
             off-handle poll {poll_ns:.2} ns vs incr {incr_ns:.2} ns [{}]",
            base * 1e3,
            with_ctl * 1e3,
            (with_ctl / base - 1.0) * 100.0,
            if macro_ok { "ok" } else { "REGRESSED" },
            if micro_ok { "ok" } else { "REGRESSED" },
        );
        if macro_ok && micro_ok {
            pass = true;
            break;
        }
    }
    if pass {
        println!(
            "lifecycle overhead gate: PASS (tolerance {:.0}%)",
            tol * 100.0
        );
    } else {
        eprintln!(
            "lifecycle overhead gate: FAIL — run-control overhead regressed in all {ROUNDS} \
             rounds (tolerance {:.0}%)",
            tol * 100.0
        );
        std::process::exit(1);
    }
}
