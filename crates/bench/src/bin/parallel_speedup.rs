//! Parallel what-if evaluation: evaluation-phase timings vs `--jobs`.
//!
//! Run with `--release`; scale the lab with `XIA_SCALE` (default 1) and
//! the workload with `XIA_SYNTH` extra synthetic statements (default 24 —
//! enough per-statement costing work for the fan-out to amortize).

use xia_bench::experiments::parallel::{self, DEFAULT_JOBS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let n_synth: usize = std::env::var("XIA_SYNTH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let workload = lab.mixed_workload(n_synth);
    let rows = parallel::run(&mut lab, &workload, &DEFAULT_JOBS);
    let t = parallel::table(&rows);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "parallel_speedup") {
        println!("wrote {}", p.display());
    }
    if let (Some(serial), Some(par)) = (
        rows.iter().find(|r| r.jobs == 1),
        rows.iter().find(|r| r.jobs == 4),
    ) {
        println!(
            "evaluation phase: {:.1} ms at jobs=1, {:.1} ms at jobs=4 ({:.2}x)",
            serial.evaluate_ms, par.evaluate_ms, par.eval_speedup
        );
    }
}
