//! Regenerates E11: what-if optimizer calls and advisor wall time with
//! statement-relevance pruning on vs `--no-prune`, over the Fig. 3 budget
//! sweep. Writes `results/pruning_speedup.csv`.

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::pruning;
use xia_bench::experiments::speedup_budget::DEFAULT_FRACTIONS;
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    // The sparse anchored workload is the regime the pruning layer is
    // for: overlapping candidate relevance merges what-if configuration
    // groups across many statements, so an unpruned probe re-costs the
    // whole group while the pruned probe touches only relevant(x).
    let workload = lab.sparse_workload(96);
    let algorithms = [
        SearchAlgorithm::Greedy,
        SearchAlgorithm::GreedyHeuristics,
        SearchAlgorithm::TopDownFull,
    ];
    let rows = pruning::run(&mut lab, &workload, &DEFAULT_FRACTIONS, &algorithms);
    let t = pruning::table(&rows);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "pruning_speedup") {
        println!("wrote {}", p.display());
    }
    if rows.iter().any(|r| !r.identical) {
        eprintln!("ERROR: a pruned run diverged from its unpruned twin");
        std::process::exit(1);
    }
    let (on, off): (u64, u64) = rows
        .iter()
        .filter(|r| r.algo == SearchAlgorithm::GreedyHeuristics)
        .fold((0, 0), |(a, b), r| {
            (a + r.calls_pruned, b + r.calls_unpruned)
        });
    println!(
        "greedy-heuristics sweep total: {on} calls pruned vs {off} unpruned ({:.2}x)",
        off as f64 / on.max(1) as f64
    );
}
