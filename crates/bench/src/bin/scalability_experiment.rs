//! Advisor scalability (cost vs workload size) plus the data-path sweep
//! (streaming parallel ingest and columnar scan throughput vs corpus
//! size). Both land in one combined `results/scalability.csv`.

use xia_bench::experiments::scalability::{self, DEFAULT_FACTORS, DEFAULT_SIZES};
use xia_bench::{write_csv, TpoxLab};

fn jobs() -> usize {
    std::env::var("XIA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let mut lab = TpoxLab::standard();
    let points = scalability::run(&mut lab, &DEFAULT_SIZES);
    print!("{}", scalability::table(&points).render());

    let datapath = scalability::run_datapath(&DEFAULT_FACTORS, jobs());
    print!("{}", scalability::datapath_table(&datapath).render());

    let combined = scalability::combined_table(&points, &datapath);
    if let Some(p) = write_csv(&combined, "scalability") {
        println!("wrote {}", p.display());
    }
}
