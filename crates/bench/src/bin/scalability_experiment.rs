//! Advisor scalability: cost vs workload size.

use xia_bench::experiments::scalability::{self, DEFAULT_SIZES};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let points = scalability::run(&mut lab, &DEFAULT_SIZES);
    let table = scalability::table(&points);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "scalability") {
        println!("wrote {}", p.display());
    }
}
