//! Regenerates Fig. 3: advisor run time (and optimizer calls) vs budget.

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::speedup_budget::{self, DEFAULT_FRACTIONS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let result = speedup_budget::run(&mut lab, &DEFAULT_FRACTIONS, &SearchAlgorithm::ALL);
    let table = speedup_budget::fig3_table(&result);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "fig3_advisor_time") {
        println!("wrote {}", p.display());
    }
    let breakdown = speedup_budget::telemetry_breakdown_table(&result);
    print!("{}", breakdown.render());
    if let Some(p) = write_csv(&breakdown, "telemetry_breakdown") {
        println!("wrote {}", p.display());
    }
}
