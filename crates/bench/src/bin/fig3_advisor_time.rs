//! Regenerates Fig. 3: advisor run time (and optimizer calls) vs budget,
//! single-threaded and at `--jobs 4` (the counts are identical; only the
//! timing columns change).

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::speedup_budget::{self, DEFAULT_FRACTIONS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let workload = lab.workload();
    let result = speedup_budget::run_workload_jobs(
        &mut lab,
        &workload,
        &DEFAULT_FRACTIONS,
        &SearchAlgorithm::ALL,
        1,
    );
    let table = speedup_budget::fig3_table(&result);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "fig3_advisor_time") {
        println!("wrote {}", p.display());
    }
    let result4 = speedup_budget::run_workload_jobs(
        &mut lab,
        &workload,
        &DEFAULT_FRACTIONS,
        &SearchAlgorithm::ALL,
        4,
    );
    let mut table4 = speedup_budget::fig3_table(&result4);
    table4.title.push_str(" (--jobs 4)");
    print!("{}", table4.render());
    if let Some(p) = write_csv(&table4, "fig3_advisor_time_jobs4") {
        println!("wrote {}", p.display());
    }
    let breakdown = speedup_budget::telemetry_breakdown_table(&result);
    print!("{}", breakdown.render());
    if let Some(p) = write_csv(&breakdown, "telemetry_breakdown") {
        println!("wrote {}", p.display());
    }
    let latencies = speedup_budget::latency_table(&mut lab, &workload, &SearchAlgorithm::ALL);
    print!("{}", latencies.render());
    if let Some(p) = write_csv(&latencies, "latency_histograms") {
        println!("wrote {}", p.display());
    }
}
