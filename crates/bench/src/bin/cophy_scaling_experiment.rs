//! Regenerates E16: CoPhy workload compression + LP-relaxation scaling,
//! cophy vs plain greedy over synthetic workloads from 1k to 100k
//! statements. Writes `results/cophy_scaling.csv`.
//!
//! `XIA_E16_SIZES` overrides the size sweep (comma-separated statement
//! counts, default `1000,10000,100000`); `XIA_E16_DP_MAX` bounds the
//! sizes on which the DP standalone optimum is cross-checked (default
//! 10000).

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::cophy_scaling;
use xia_bench::{write_csv, TpoxLab};

fn sizes() -> Vec<usize> {
    std::env::var("XIA_E16_SIZES")
        .ok()
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000])
}

fn dp_max() -> usize {
    std::env::var("XIA_E16_DP_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
}

fn main() {
    let mut lab = TpoxLab::standard();
    let sizes = sizes();
    let rows = cophy_scaling::run(
        &mut lab,
        &sizes,
        &[SearchAlgorithm::Cophy, SearchAlgorithm::Greedy],
        dp_max(),
    );
    let t = cophy_scaling::table(&rows);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "cophy_scaling") {
        println!("wrote {}", p.display());
    }
    // Headline ratio at the largest size.
    let largest = *sizes.iter().max().unwrap();
    let calls = |algo: SearchAlgorithm| {
        rows.iter()
            .find(|r| r.n_statements == largest && r.algo == algo)
            .map(|r| (r.evaluate_calls, r.wall_ms))
    };
    if let (Some((cophy, cophy_ms)), Some((greedy, _))) = (
        calls(SearchAlgorithm::Cophy),
        calls(SearchAlgorithm::Greedy),
    ) {
        println!(
            "at {largest} statements: cophy {cophy} evaluate calls in {:.1} s vs greedy {greedy} \
             ({:.1}x fewer)",
            cophy_ms / 1e3,
            greedy as f64 / cophy.max(1) as f64
        );
    }
}
