//! Overhead gate for the streaming data path, meant for CI: exits
//! non-zero if the default streaming ingest path (single-pass parse fused
//! with the columnar append) measurably lags the DOM path it replaced.
//!
//! Three legs:
//!
//! * **Throughput**: parse-and-insert the serialized tiny TPoX corpus
//!   through [`Collection::insert_xml`] (streaming, fused columnar
//!   append) versus [`Collection::insert_xml_dom`] (materialize the DOM,
//!   then project columns). Streaming must stay within the tolerance of
//!   the DOM baseline — it does strictly less work per node, so any real
//!   regression here is a bug, not noise.
//! * **Parity**: both paths must produce identical collections (same
//!   vocabulary, same document arenas, same column store). A throughput
//!   win on a wrong answer is no win; the gate asserts parity before it
//!   times anything.
//! * **Index build**: [`PhysicalIndex::build_with_jobs`] shards columnar
//!   row collection by document range. Sharded builds must be
//!   `PartialEq`-identical to the serial build at every worker count,
//!   and the sharded build must not regress against the serial one
//!   beyond the tolerance.
//!
//! Timing is noisy on shared CI runners, so the gate retries a few rounds
//! and fails only if every round regresses. `XIA_GATE_TOLERANCE`
//! overrides the relative tolerance (default 0.05 = 5%).

use std::time::Instant;
use xia_storage::{Collection, PhysicalIndex};
use xia_workloads::tpox::{self, TpoxConfig};
use xia_xpath::{parse_linear_path, ValueKind};

const ROUNDS: usize = 5;

fn tolerance() -> f64 {
    std::env::var("XIA_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// Inserts every text into a fresh collection; returns (collection, secs).
fn ingest_secs(texts: &[String], use_dom: bool) -> (Collection, f64) {
    let mut c = Collection::new("GATE");
    let t0 = Instant::now();
    for t in texts {
        let r = if use_dom {
            c.insert_xml_dom(t)
        } else {
            c.insert_xml(t)
        };
        r.expect("generated TPoX documents parse");
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(c.len());
    (c, secs)
}

fn main() {
    let tol = tolerance();
    let (securities, orders, customers) = tpox::docs_xml(&TpoxConfig::tiny());
    let mut texts = securities;
    texts.extend(orders);
    texts.extend(customers);

    // Parity first: a fast wrong answer must not pass the gate.
    let (stream, _) = ingest_secs(&texts, false);
    let (dom, _) = ingest_secs(&texts, true);
    assert_eq!(
        stream.vocab(),
        dom.vocab(),
        "streaming and DOM ingest built different vocabularies"
    );
    assert!(
        stream.iter_docs().eq(dom.iter_docs()),
        "streaming and DOM ingest built different documents"
    );
    assert_eq!(
        stream.columns(),
        dom.columns(),
        "streaming and DOM ingest built different column stores"
    );
    println!("parity: streaming == DOM over {} documents", texts.len());

    let mut pass = false;
    for round in 1..=ROUNDS {
        let (_, dom_secs) = ingest_secs(&texts, true);
        let (_, stream_secs) = ingest_secs(&texts, false);
        let ok = stream_secs <= dom_secs * (1.0 + tol);
        println!(
            "round {round}: dom {:.1} ms, streaming {:.1} ms ({:+.1}%) [{}]",
            dom_secs * 1e3,
            stream_secs * 1e3,
            (stream_secs / dom_secs - 1.0) * 100.0,
            if ok { "ok" } else { "REGRESSED" },
        );
        if ok {
            pass = true;
            break;
        }
    }
    if pass {
        println!("datapath gate: PASS (tolerance {:.0}%)", tol * 100.0);
    } else {
        eprintln!(
            "datapath gate: FAIL — streaming ingest lagged the DOM path in all {ROUNDS} rounds \
             (tolerance {:.0}%)",
            tol * 100.0
        );
        std::process::exit(1);
    }

    // Index-build leg: replicate the corpus past the sharding threshold,
    // then check the doc-range-sharded build for parity and overhead.
    let mut big = Collection::new("GATE");
    for _ in 0..20 {
        for t in &texts {
            big.insert_xml(t).expect("generated TPoX documents parse");
        }
    }
    assert!(big.columns().is_some(), "columnar projection must be live");
    let patterns = [
        ("/Security//*", ValueKind::Str),
        ("/Security/Symbol", ValueKind::Str),
        ("/Security/Yield", ValueKind::Num),
    ];
    for (pat, kind) in patterns {
        let p = parse_linear_path(pat).unwrap();
        let serial = PhysicalIndex::build_with_jobs(&big, &p, kind, 1);
        for jobs in [2, 4, 8] {
            let par = PhysicalIndex::build_with_jobs(&big, &p, kind, jobs);
            assert_eq!(
                serial, par,
                "sharded index build diverged from serial ({pat}, jobs={jobs})"
            );
        }
    }
    println!(
        "parity: sharded index build == serial over {} documents, {} patterns",
        big.len(),
        patterns.len()
    );

    let build_secs = |jobs: usize| {
        let t0 = Instant::now();
        for (pat, kind) in patterns {
            let p = parse_linear_path(pat).unwrap();
            std::hint::black_box(PhysicalIndex::build_with_jobs(&big, &p, kind, jobs).entries());
        }
        t0.elapsed().as_secs_f64()
    };
    let mut pass = false;
    for round in 1..=ROUNDS {
        let serial_secs = build_secs(1);
        let par_secs = build_secs(4);
        let ok = par_secs <= serial_secs * (1.0 + tol);
        println!(
            "round {round}: serial build {:.1} ms, sharded(4) {:.1} ms ({:+.1}%) [{}]",
            serial_secs * 1e3,
            par_secs * 1e3,
            (par_secs / serial_secs - 1.0) * 100.0,
            if ok { "ok" } else { "REGRESSED" },
        );
        if ok {
            pass = true;
            break;
        }
    }
    if pass {
        println!("index-build gate: PASS (tolerance {:.0}%)", tol * 100.0);
    } else {
        eprintln!(
            "index-build gate: FAIL — sharded index build lagged serial in all {ROUNDS} rounds \
             (tolerance {:.0}%)",
            tol * 100.0
        );
        std::process::exit(1);
    }
}
