//! Regenerates Fig. 2: estimated speedup vs disk budget.

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::speedup_budget::{self, DEFAULT_FRACTIONS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let result = speedup_budget::run(&mut lab, &DEFAULT_FRACTIONS, &SearchAlgorithm::ALL);
    let table = speedup_budget::fig2_table(&result);
    print!("{}", table.render());
    println!(
        "All-Index size: {:.2} MiB",
        result.all_index_size as f64 / (1024.0 * 1024.0)
    );
    if let Some(p) = write_csv(&table, "fig2_speedup") {
        println!("wrote {}", p.display());
    }
}
