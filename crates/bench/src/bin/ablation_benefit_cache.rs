//! E9 ablations: benefit-evaluation machinery and β sweep.

use xia_bench::experiments::ablation::{self, DEFAULT_BETAS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let rows = ablation::run_switches(&mut lab);
    let t1 = ablation::switches_table(&rows);
    print!("{}", t1.render());
    if let Some(p) = write_csv(&t1, "ablation_switches") {
        println!("wrote {}", p.display());
    }
    println!();
    let rows = ablation::run_beta(&mut lab, &DEFAULT_BETAS);
    let t2 = ablation::beta_table(&rows);
    print!("{}", t2.render());
    if let Some(p) = write_csv(&t2, "ablation_beta") {
        println!("wrote {}", p.display());
    }
}
