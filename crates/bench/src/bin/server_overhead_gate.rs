//! Release gate for the warm advisor service, meant for CI: exits
//! non-zero if the warm path stops paying for itself or stops being
//! correct.
//!
//! Three legs:
//!
//! * **Speedup**: E17 warm-vs-cold — the median repeat recommend on a
//!   live server must be at least `XIA_SERVER_GATE_MIN_SPEEDUP` (default
//!   5) times faster than a cold batch run of the same workload. Timing
//!   is noisy on shared CI runners, so the gate retries a few rounds and
//!   fails only if every round misses the bar.
//! * **Identity**: a fast wrong answer must not pass — every round's
//!   warm recommendation (single-session and across concurrent sessions)
//!   must be byte-identical to the cold one. Identity failures are not
//!   retried; they are bugs, not noise.
//! * **Drift**: a drift-crossing observe stream triggers exactly one
//!   incremental re-recommendation, visible as exactly one
//!   `drift_detected` event in the session journal.
//!
//! The best round's numbers are written to `BENCH_server.json` so the
//! perf trajectory is tracked across PRs. `XIA_JOBS` sets the what-if
//! worker count on both paths.

use xia_bench::experiments::server_warm::{self, observe_line, recommend_line, Conn};
use xia_bench::write_bench_json;
use xia_server::{start, ServerConfig};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};

const ROUNDS: usize = 5;

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let min_speedup: f64 = env_num("XIA_SERVER_GATE_MIN_SPEEDUP", 5.0);
    let jobs: usize = env_num("XIA_JOBS", 0);
    let jobs = (jobs > 0).then_some(jobs);
    let cfg = TpoxConfig::tiny();

    // Speedup + identity legs.
    let mut best: Option<server_warm::E17> = None;
    let mut pass = false;
    for round in 1..=ROUNDS {
        let e = server_warm::run(&cfg, 5, 4, 3, jobs);
        assert!(
            e.identical,
            "warm recommendation diverged from the cold one (round {round})"
        );
        assert!(
            e.concurrent_identical,
            "a concurrent session's recommendation diverged from the cold one (round {round})"
        );
        let ok = e.speedup >= min_speedup;
        println!(
            "round {round}: cold {:.1} ms, warm {:.2} ms ({:.1}x), {:.0} replies/s [{}]",
            e.cold_secs * 1e3,
            e.warm_secs * 1e3,
            e.speedup,
            e.throughput_rps,
            if ok { "ok" } else { "TOO SLOW" },
        );
        if best.as_ref().is_none_or(|b| e.speedup > b.speedup) {
            best = Some(e);
        }
        if ok {
            pass = true;
            break;
        }
    }
    let best = best.expect("at least one round ran");
    print!("{}", server_warm::table(&best).render());
    if let Some(path) = write_bench_json("server", server_warm::bench_fields(&best)) {
        println!("wrote {}", path.display());
    }
    if !pass {
        eprintln!(
            "server gate: FAIL — warm repeat recommend under {min_speedup:.0}x cold in all \
             {ROUNDS} rounds (best {:.1}x)",
            best.speedup
        );
        std::process::exit(1);
    }
    println!(
        "server gate: PASS (speedup {:.1}x >= {min_speedup:.0}x)",
        best.speedup
    );

    // Drift leg: exactly one incremental re-advise per threshold crossing.
    let mut db = Database::new();
    tpox::generate(&mut db, &cfg);
    let handle = start(
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            drift_threshold: 0.3,
            jobs,
            ..Default::default()
        },
        db,
    )
    .expect("loopback listener binds");
    let addr = handle.tcp_addr().expect("tcp listener is up").to_string();
    let mut conn = Conn::connect(&addr).expect("connect");
    let q_symbol = r#"collection('SDOC')/Security[Symbol = "SYM00001"]"#.to_string();
    let q_yield = r#"collection('SDOC')/Security[Yield > 4.5]"#.to_string();
    conn.request(&observe_line(&[q_symbol])).expect("observe");
    conn.request(&recommend_line()).expect("baseline recommend");
    let reply = conn
        .request(&observe_line(&[q_yield.clone(), q_yield.clone(), q_yield]))
        .expect("drifting observe");
    assert!(
        reply.contains(r#""readvised":true"#),
        "drift crossing did not re-advise: {reply}"
    );
    let journal = conn.request(r#"{"verb":"journal"}"#).expect("journal");
    let events = journal.matches("drift_detected").count();
    assert_eq!(
        events, 1,
        "expected exactly one drift_detected event, got {events}: {journal}"
    );
    handle.shutdown();
    drop(conn);
    handle.join();
    println!("drift gate: PASS (one crossing, one drift_detected event)");
}
