//! Regenerates E12: generalization-fixpoint pair visits and wall time,
//! naive (Algorithm 1 / `--no-fastpath`) vs semi-naive, over widened
//! Table III workloads. Writes `results/generalization_speedup.csv`.

use xia_bench::experiments::generalization_speedup;
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    // The 11 TPoX queries widened with 0 / 16 / 32 / 64 / 128 synthetic
    // queries — the Table III axis, extended until the naive fixpoint's
    // quadratic pair scan dominates.
    let widths = [0usize, 16, 32, 64, 128];
    let rows = generalization_speedup::run(&mut lab, &widths);
    let t = generalization_speedup::table(&rows);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "generalization_speedup") {
        println!("wrote {}", p.display());
    }
    if rows.iter().any(|r| !r.identical) {
        eprintln!("ERROR: a semi-naive run diverged from its naive twin");
        std::process::exit(1);
    }
    let last = rows.last().expect("rows");
    let ratio = last.visits_naive as f64 / last.visits_fast.max(1) as f64;
    println!(
        "largest workload ({} statements): {} naive vs {} semi-naive pair visits ({ratio:.2}x), {:.1} ms vs {:.1} ms",
        last.statements, last.visits_naive, last.visits_fast, last.ms_naive, last.ms_fast
    );
    if ratio < 3.0 {
        eprintln!("ERROR: semi-naive saved only {ratio:.2}x pair visits (< 3x bar)");
        std::process::exit(1);
    }
}
