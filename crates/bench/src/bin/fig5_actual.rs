//! Regenerates Fig. 5: actual (executed) speedup on the test workload as
//! the training prefix grows.

use xia_bench::experiments::generalization;
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let sizes = generalization::default_train_sizes();
    let result = generalization::run(&mut lab, &sizes, 21.0, true);
    let table = generalization::table(&result);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "fig5_actual") {
        println!("wrote {}", p.display());
    }
}
