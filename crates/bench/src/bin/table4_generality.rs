//! Regenerates Table IV: general vs specific index counts per budget.

use xia_bench::experiments::generality::{self, DEFAULT_FRACTIONS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let rows = generality::run(&mut lab, &DEFAULT_FRACTIONS);
    let table = generality::table(&rows);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "table4_generality") {
        println!("wrote {}", p.display());
    }
}
