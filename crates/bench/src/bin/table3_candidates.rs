//! Regenerates Table III: basic vs total candidate counts on synthetic
//! workloads.

use xia_bench::experiments::candidates::{self, DEFAULT_SIZES};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let rows = candidates::run(&mut lab, &DEFAULT_SIZES);
    let table = candidates::table(&rows);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "table3_candidates") {
        println!("wrote {}", p.display());
    }
}
