//! XMark secondary-benchmark experiment (tech-report appendix).

use xia_bench::experiments::xmark_exp::{self, DEFAULT_FRACTIONS};
use xia_bench::write_csv;
use xia_workloads::xmark::XmarkConfig;

fn main() {
    let cfg = XmarkConfig::default();
    let (points, all_speedup, all_size) = xmark_exp::run(&cfg, &DEFAULT_FRACTIONS);
    let table = xmark_exp::table(&points, all_speedup, all_size);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "xmark_experiment") {
        println!("wrote {}", p.display());
    }
}
