//! Maintenance-cost experiment: recommendations vs update frequency.

use xia_bench::experiments::update_cost::{self, DEFAULT_FREQS};
use xia_bench::{write_csv, TpoxLab};

fn main() {
    let mut lab = TpoxLab::standard();
    let rows = update_cost::run(&mut lab, &DEFAULT_FREQS);
    let table = update_cost::table(&rows);
    print!("{}", table.render());
    if let Some(p) = write_csv(&table, "update_cost") {
        println!("wrote {}", p.display());
    }
}
