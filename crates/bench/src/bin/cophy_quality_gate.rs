//! Quality gate for the CoPhy LP-relaxation search, meant for CI: exits
//! non-zero if the relaxation's certificate stops holding or workload
//! compression stops being lossless.
//!
//! Three legs, all on small instances where the DP standalone optimum is
//! affordable:
//!
//! * **Certificate**: for a sweep of budgets, the LP fractional bound
//!   must dominate both the cophy configuration's standalone value and
//!   the DP optimum (`v ≤ lp_bound`), and the rounded solution must
//!   carry at least half the bound (`v_cophy ≥ lp_bound / 2`) — the two
//!   inequalities the module proves. Both are exact mathematics, not
//!   timing; they get a 1e-6 epsilon for float accumulation and no retry
//!   rounds.
//! * **Matched quality**: the rounded solution must stay within the
//!   tolerance of the DP optimum (`v_cophy ≥ v_dp · (1 − tol)`), far
//!   inside the provable 2× floor. `XIA_GATE_TOLERANCE` overrides the
//!   default 0.05.
//! * **Losslessness**: a full `--algorithm cophy` advisor run must
//!   recommend the same indexes with compression on and off.

use xia_advisor::search::{cophy_with_outcome, dp_knapsack, standalone_benefits};
use xia_advisor::{Advisor, AdvisorParams, BenefitEvaluator, CandId, SearchAlgorithm};
use xia_bench::TpoxLab;

const EPS: f64 = 1e-6;
const BUDGET_FRACTIONS: [f64; 4] = [0.15, 0.4, 0.8, 1.0];

fn tolerance() -> f64 {
    std::env::var("XIA_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

fn main() {
    let tol = tolerance();
    let mut lab = TpoxLab::quick();
    let workloads = [
        ("tpox-11", lab.workload()),
        ("synthetic-64", lab.synthetic_workload(64, 0x9A7E)),
        ("mixed-30", lab.mixed_workload(19)),
    ];
    let mut failed = false;

    for (tag, w) in &workloads {
        let set = Advisor::prepare(&mut lab.db, w, &AdvisorParams::default());
        let all: Vec<CandId> = set.ids().collect();
        let all_index = set.config_size(&Advisor::all_index_config(&set));
        for frac in BUDGET_FRACTIONS {
            let budget = (all_index as f64 * frac) as u64;
            let mut ev = BenefitEvaluator::new(&mut lab.db, w, &set);
            let benefits = standalone_benefits(&mut ev, &all);
            let out = cophy_with_outcome(&mut ev, &all, budget);
            let d = dp_knapsack(&mut ev, &all, budget);
            let v_dp: f64 = d.iter().map(|id| benefits[id]).sum();
            let mut leg = |ok: bool, what: &str| {
                if !ok {
                    failed = true;
                }
                println!(
                    "{tag} @{frac}: {what} [{}]",
                    if ok { "ok" } else { "VIOLATED" }
                );
            };
            leg(
                out.value <= out.lp_bound + EPS,
                &format!("v_cophy {:.2} <= lp_bound {:.2}", out.value, out.lp_bound),
            );
            leg(
                v_dp <= out.lp_bound + EPS,
                &format!("v_dp {v_dp:.2} <= lp_bound {:.2}", out.lp_bound),
            );
            leg(
                out.value >= 0.5 * out.lp_bound - EPS,
                &format!(
                    "v_cophy {:.2} >= lp_bound/2 {:.2}",
                    out.value,
                    0.5 * out.lp_bound
                ),
            );
            leg(
                out.value >= v_dp * (1.0 - tol),
                &format!(
                    "v_cophy {:.2} >= v_dp {v_dp:.2} within {:.0}%",
                    out.value,
                    tol * 100.0
                ),
            );
        }
    }

    // Losslessness: the full advisor pipeline, compression on vs off.
    for (tag, w) in &workloads {
        let advise = |lab: &mut TpoxLab, compress: bool| {
            let params = AdvisorParams {
                compress,
                ..AdvisorParams::default()
            };
            let rec = Advisor::recommend(
                &mut lab.db,
                w,
                u64::MAX / 2,
                SearchAlgorithm::Cophy,
                &params,
            )
            .expect("advise");
            rec.indexes
                .iter()
                .map(|ix| format!("{ix:?}"))
                .collect::<Vec<_>>()
        };
        let on = advise(&mut lab, true);
        let off = advise(&mut lab, false);
        if on == off {
            println!("{tag}: compression lossless ({} indexes) [ok]", on.len());
        } else {
            failed = true;
            println!("{tag}: compression CHANGED the recommendation [VIOLATED]");
            println!("  on:  {on:?}");
            println!("  off: {off:?}");
        }
    }

    if failed {
        eprintln!("cophy quality gate: FAIL");
        std::process::exit(1);
    }
    println!("cophy quality gate: PASS (tolerance {:.0}%)", tol * 100.0);
}
