//! Runs every experiment in sequence (the EXPERIMENTS.md regeneration
//! driver). Expect several minutes in release mode.

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::*;
use xia_bench::{write_csv, TpoxLab};
use xia_workloads::xmark::XmarkConfig;

fn main() {
    let mut lab = TpoxLab::standard();

    println!("=== Fig. 2 / Fig. 3 ===");
    let sweep = speedup_budget::run(
        &mut lab,
        &speedup_budget::DEFAULT_FRACTIONS,
        &SearchAlgorithm::ALL,
    );
    let t = speedup_budget::fig2_table(&sweep);
    print!("{}", t.render());
    write_csv(&t, "fig2_speedup");
    let t = speedup_budget::fig3_table(&sweep);
    print!("{}", t.render());
    write_csv(&t, "fig3_advisor_time");

    println!("\n=== Table III ===");
    let rows = candidates::run(&mut lab, &candidates::DEFAULT_SIZES);
    let t = candidates::table(&rows);
    print!("{}", t.render());
    write_csv(&t, "table3_candidates");

    println!("\n=== Table IV ===");
    let rows = generality::run(&mut lab, &generality::DEFAULT_FRACTIONS);
    let t = generality::table(&rows);
    print!("{}", t.render());
    write_csv(&t, "table4_generality");

    println!("\n=== Fig. 4 ===");
    let sizes = generalization::default_train_sizes();
    let r = generalization::run(&mut lab, &sizes, 21.0, false);
    let t = generalization::table(&r);
    print!("{}", t.render());
    write_csv(&t, "fig4_generalization");

    println!("\n=== Fig. 5 ===");
    let r = generalization::run(&mut lab, &sizes, 21.0, true);
    let t = generalization::table(&r);
    print!("{}", t.render());
    write_csv(&t, "fig5_actual");

    println!("\n=== XMark ===");
    let (points, all_speedup, all_size) =
        xmark_exp::run(&XmarkConfig::default(), &xmark_exp::DEFAULT_FRACTIONS);
    let t = xmark_exp::table(&points, all_speedup, all_size);
    print!("{}", t.render());
    write_csv(&t, "xmark_experiment");

    println!("\n=== Update cost ===");
    let rows = update_cost::run(&mut lab, &update_cost::DEFAULT_FREQS);
    let t = update_cost::table(&rows);
    print!("{}", t.render());
    write_csv(&t, "update_cost");

    println!("\n=== Scalability ===");
    let points = scalability::run(&mut lab, &scalability::DEFAULT_SIZES);
    let t = scalability::table(&points);
    print!("{}", t.render());
    write_csv(&t, "scalability");

    println!("\n=== Ablations ===");
    let rows = ablation::run_switches(&mut lab);
    let t = ablation::switches_table(&rows);
    print!("{}", t.render());
    write_csv(&t, "ablation_switches");
    let rows = ablation::run_beta(&mut lab, &ablation::DEFAULT_BETAS);
    let t = ablation::beta_table(&rows);
    print!("{}", t.render());
    write_csv(&t, "ablation_beta");

    println!("\n=== Parallel what-if evaluation ===");
    let workload = lab.mixed_workload(24);
    let rows = parallel::run(&mut lab, &workload, &parallel::DEFAULT_JOBS);
    let t = parallel::table(&rows);
    print!("{}", t.render());
    write_csv(&t, "parallel_speedup");

    println!("\n=== E16: CoPhy compression + LP relaxation ===");
    // A reduced sweep; the standalone `cophy_scaling_experiment` bin
    // runs the full 1k → 100k version.
    let rows = cophy_scaling::run(
        &mut lab,
        &[1_000, 10_000],
        &[SearchAlgorithm::Cophy, SearchAlgorithm::Greedy],
        10_000,
    );
    let t = cophy_scaling::table(&rows);
    print!("{}", t.render());
    write_csv(&t, "cophy_scaling");
}
