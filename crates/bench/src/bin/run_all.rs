//! Runs every experiment in sequence (the EXPERIMENTS.md regeneration
//! driver). Expect several minutes in release mode.
//!
//! Besides the per-experiment CSVs under `results/`, writes
//! `BENCH_advisor.json` with each section's wall-clock seconds so the
//! advisor's perf trajectory is tracked across PRs.

use std::time::Instant;
use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::*;
use xia_bench::{write_bench_json, write_csv, TpoxLab};
use xia_obs::json::Json;
use xia_workloads::xmark::XmarkConfig;

/// Times one experiment section, recording its seconds under `name`.
fn section(bench: &mut Vec<(String, Json)>, name: &str, body: impl FnOnce()) {
    let t0 = Instant::now();
    body();
    bench.push((
        format!("{name}_secs"),
        Json::Num(t0.elapsed().as_secs_f64()),
    ));
}

fn main() {
    let mut lab = TpoxLab::standard();
    let mut bench: Vec<(String, Json)> = Vec::new();
    let total = Instant::now();

    println!("=== Fig. 2 / Fig. 3 ===");
    section(&mut bench, "fig2_fig3", || {
        let sweep = speedup_budget::run(
            &mut lab,
            &speedup_budget::DEFAULT_FRACTIONS,
            &SearchAlgorithm::ALL,
        );
        let t = speedup_budget::fig2_table(&sweep);
        print!("{}", t.render());
        write_csv(&t, "fig2_speedup");
        let t = speedup_budget::fig3_table(&sweep);
        print!("{}", t.render());
        write_csv(&t, "fig3_advisor_time");
    });

    println!("\n=== Table III ===");
    section(&mut bench, "table3", || {
        let rows = candidates::run(&mut lab, &candidates::DEFAULT_SIZES);
        let t = candidates::table(&rows);
        print!("{}", t.render());
        write_csv(&t, "table3_candidates");
    });

    println!("\n=== Table IV ===");
    section(&mut bench, "table4", || {
        let rows = generality::run(&mut lab, &generality::DEFAULT_FRACTIONS);
        let t = generality::table(&rows);
        print!("{}", t.render());
        write_csv(&t, "table4_generality");
    });

    println!("\n=== Fig. 4 ===");
    let sizes = generalization::default_train_sizes();
    section(&mut bench, "fig4", || {
        let r = generalization::run(&mut lab, &sizes, 21.0, false);
        let t = generalization::table(&r);
        print!("{}", t.render());
        write_csv(&t, "fig4_generalization");
    });

    println!("\n=== Fig. 5 ===");
    section(&mut bench, "fig5", || {
        let r = generalization::run(&mut lab, &sizes, 21.0, true);
        let t = generalization::table(&r);
        print!("{}", t.render());
        write_csv(&t, "fig5_actual");
    });

    println!("\n=== XMark ===");
    section(&mut bench, "xmark", || {
        let (points, all_speedup, all_size) =
            xmark_exp::run(&XmarkConfig::default(), &xmark_exp::DEFAULT_FRACTIONS);
        let t = xmark_exp::table(&points, all_speedup, all_size);
        print!("{}", t.render());
        write_csv(&t, "xmark_experiment");
    });

    println!("\n=== Update cost ===");
    section(&mut bench, "update_cost", || {
        let rows = update_cost::run(&mut lab, &update_cost::DEFAULT_FREQS);
        let t = update_cost::table(&rows);
        print!("{}", t.render());
        write_csv(&t, "update_cost");
    });

    println!("\n=== Scalability ===");
    section(&mut bench, "scalability", || {
        let points = scalability::run(&mut lab, &scalability::DEFAULT_SIZES);
        let t = scalability::table(&points);
        print!("{}", t.render());
        write_csv(&t, "scalability");
    });

    println!("\n=== Ablations ===");
    section(&mut bench, "ablation", || {
        let rows = ablation::run_switches(&mut lab);
        let t = ablation::switches_table(&rows);
        print!("{}", t.render());
        write_csv(&t, "ablation_switches");
        let rows = ablation::run_beta(&mut lab, &ablation::DEFAULT_BETAS);
        let t = ablation::beta_table(&rows);
        print!("{}", t.render());
        write_csv(&t, "ablation_beta");
    });

    println!("\n=== Parallel what-if evaluation ===");
    section(&mut bench, "parallel", || {
        let workload = lab.mixed_workload(24);
        let rows = parallel::run(&mut lab, &workload, &parallel::DEFAULT_JOBS);
        let t = parallel::table(&rows);
        print!("{}", t.render());
        write_csv(&t, "parallel_speedup");
    });

    println!("\n=== E16: CoPhy compression + LP relaxation ===");
    section(&mut bench, "cophy_scaling", || {
        // A reduced sweep; the standalone `cophy_scaling_experiment` bin
        // runs the full 1k → 100k version.
        let rows = cophy_scaling::run(
            &mut lab,
            &[1_000, 10_000],
            &[SearchAlgorithm::Cophy, SearchAlgorithm::Greedy],
            10_000,
        );
        let t = cophy_scaling::table(&rows);
        print!("{}", t.render());
        write_csv(&t, "cophy_scaling");
    });

    println!("\n=== E17: warm service vs cold batch ===");
    section(&mut bench, "server_warm", || {
        let e = server_warm::run(&lab.cfg, 5, 4, 3, None);
        let t = server_warm::table(&e);
        print!("{}", t.render());
        write_csv(&t, "server_warm");
        for (k, v) in server_warm::bench_fields(&e) {
            bench_field_note(&k, &v);
        }
        // The standalone `server_overhead_gate` bin enforces the 5x bar;
        // here the numbers just land in BENCH_advisor.json via the
        // section timer plus the dedicated BENCH_server.json snapshot.
        write_bench_json("server", server_warm::bench_fields(&e));
    });

    bench.push((
        "total_secs".into(),
        Json::Num(total.elapsed().as_secs_f64()),
    ));
    if let Some(path) = write_bench_json("advisor", bench) {
        println!("\nwrote {}", path.display());
    }
}

/// Prints one BENCH field as a `key = value` note.
fn bench_field_note(k: &str, v: &Json) {
    println!("  {k} = {}", v.render());
}
