//! Criterion micro-benchmarks for the advisor's hot paths: containment,
//! generalization, optimizer costing, physical execution, and the five
//! configuration searches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xia_advisor::{generalize_pair, Advisor, AdvisorParams, BenefitEvaluator, SearchAlgorithm};
use xia_bench::TpoxLab;
use xia_optimizer::{execute_query, Optimizer};
use xia_workloads::tpox;
use xia_xpath::{contain, parse_linear_path, parse_statement};

fn bench_containment(c: &mut Criterion) {
    let general = parse_linear_path("/Security//*").unwrap();
    let specific = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
    let deep_a = parse_linear_path("/a/b/c/d/e/f//g/*/h").unwrap();
    let deep_b = parse_linear_path("/a/b/c/d/e/f/x/g/y/h").unwrap();
    c.bench_function("contain/covers_shallow", |b| {
        b.iter(|| contain::covers(std::hint::black_box(&general), std::hint::black_box(&specific)))
    });
    c.bench_function("contain/covers_deep", |b| {
        b.iter(|| contain::covers(std::hint::black_box(&deep_a), std::hint::black_box(&deep_b)))
    });
}

fn bench_generalize(c: &mut Criterion) {
    let p = parse_linear_path("/Security/Symbol").unwrap();
    let q = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
    let r = parse_linear_path("/a/d/b/d").unwrap();
    let s = parse_linear_path("/a/b/d").unwrap();
    c.bench_function("generalize/paper_pair", |b| {
        b.iter(|| generalize_pair(std::hint::black_box(&p), std::hint::black_box(&q)))
    });
    c.bench_function("generalize/reoccurrence_pair", |b| {
        b.iter(|| generalize_pair(std::hint::black_box(&s), std::hint::black_box(&r)))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let lab = TpoxLab::quick();
    let coll = lab.db.collection(tpox::SECURITY_COLL).unwrap();
    let stats = lab.db.stats_cached(tpox::SECURITY_COLL).unwrap();
    let catalog = lab.db.catalog(tpox::SECURITY_COLL).unwrap();
    let opt = Optimizer::new(coll, stats, catalog);
    let stmt = parse_statement(
        r#"for $s in SECURITY('SDOC')/Security[Yield > 4.5]
           where $s/SecInfo/*/Sector = "Energy" return $s/Name"#,
    )
    .unwrap();
    c.bench_function("optimizer/evaluate_mode_scan", |b| {
        b.iter(|| opt.optimize(std::hint::black_box(&stmt)))
    });
    c.bench_function("optimizer/enumerate_mode", |b| {
        b.iter(|| opt.enumerate_indexes(std::hint::black_box(&stmt)))
    });
}

fn bench_execution(c: &mut Criterion) {
    let mut lab = TpoxLab::quick();
    let name = tpox::SECURITY_COLL;
    {
        let (collection, catalog, _) = lab.db.parts_mut(name).unwrap();
        catalog.create_physical(
            collection,
            &parse_linear_path("/Security/Symbol").unwrap(),
            xia_xpath::ValueKind::Str,
        );
    }
    lab.db.runstats_all();
    let (collection, catalog, stats) = lab.db.parts(name).unwrap();
    let opt = Optimizer::new(collection, stats, catalog);
    let stmt = parse_statement(
        r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "SYM00007" return $s"#,
    )
    .unwrap();
    let indexed_plan = opt.optimize(&stmt);
    let scan_plan = xia_optimizer::Plan {
        access: xia_optimizer::AccessChoice::Scan,
        ..indexed_plan.clone()
    };
    c.bench_function("exec/index_probe", |b| {
        b.iter(|| execute_query(&stmt, &indexed_plan, collection, catalog).unwrap())
    });
    c.bench_function("exec/full_scan", |b| {
        b.iter(|| execute_query(&stmt, &scan_plan, collection, catalog).unwrap())
    });
}

fn bench_searches(c: &mut Criterion) {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let budget = set.config_size(&Advisor::all_index_config(&set));
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for algo in SearchAlgorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            b.iter(|| {
                Advisor::recommend_prepared(&mut lab.db, &workload, &set, budget, algo, &params)
            })
        });
    }
    group.finish();
}

fn bench_benefit_cache(c: &mut Criterion) {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let all = set.basic_ids();
    let mut group = c.benchmark_group("benefit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("cached", |b| {
        let mut ev = BenefitEvaluator::new(&mut lab.db, &workload, &set);
        ev.benefit(&all); // warm the cache
        b.iter(|| ev.benefit(std::hint::black_box(&all)))
    });
    group.bench_function("uncached", |b| {
        let mut ev = BenefitEvaluator::new(&mut lab.db, &workload, &set);
        ev.use_cache = false;
        b.iter(|| ev.benefit(std::hint::black_box(&all)))
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let lab = TpoxLab::quick();
    let coll = lab.db.collection(tpox::SECURITY_COLL).unwrap();
    c.bench_function("storage/runstats", |b| {
        b.iter(|| xia_storage::runstats(std::hint::black_box(coll)))
    });
    c.bench_function("storage/build_physical_index", |b| {
        b.iter(|| {
            xia_storage::PhysicalIndex::build(
                std::hint::black_box(coll),
                &parse_linear_path("/Security/Symbol").unwrap(),
                xia_xpath::ValueKind::Str,
            )
        })
    });
    c.bench_function("storage/persist_save", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            xia_storage::persist::save_database_to(std::hint::black_box(&lab.db), &mut buf)
                .unwrap();
            buf
        })
    });
    let mut buf = Vec::new();
    xia_storage::persist::save_database_to(&lab.db, &mut buf).unwrap();
    c.bench_function("storage/persist_load", |b| {
        b.iter(|| {
            xia_storage::persist::load_database_from(&mut std::io::Cursor::new(
                std::hint::black_box(&buf),
            ))
            .unwrap()
        })
    });
}

/// Short, CI-friendly measurement windows; raise for precision runs.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = config();
    targets =
        bench_containment,
        bench_generalize,
        bench_optimizer,
        bench_execution,
        bench_searches,
        bench_benefit_cache,
        bench_storage
}
criterion_main!(benches);
