//! Micro-benchmarks for the advisor's hot paths: containment,
//! generalization, optimizer costing, physical execution, the five
//! configuration searches, and telemetry overhead.
//!
//! Uses a small internal timing harness (the build environment has no
//! registry access, so criterion is unavailable): each benchmark is
//! warmed up, then run for a fixed wall-clock window, and the mean
//! ns/iteration is printed. Run with `cargo bench -p xia-bench`.

use std::time::{Duration, Instant};
use xia_advisor::{generalize_pair, Advisor, AdvisorParams, BenefitEvaluator, SearchAlgorithm};
use xia_bench::TpoxLab;
use xia_obs::{Counter, Telemetry};
use xia_optimizer::{execute_query, Optimizer};
use xia_workloads::tpox;
use xia_xpath::{contain, parse_linear_path, parse_statement};

/// Runs `f` repeatedly for ~`window` after a short warm-up and prints the
/// mean time per iteration.
fn bench<R>(name: &str, window: Duration, mut f: impl FnMut() -> R) {
    // Warm-up: a tenth of the window.
    let warm_until = Instant::now() + window / 10;
    while Instant::now() < warm_until {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < window {
        std::hint::black_box(f());
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    let (value, unit) = if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter   ({iters} iters)");
}

fn quick() -> Duration {
    Duration::from_millis(300)
}

fn bench_containment() {
    let general = parse_linear_path("/Security//*").unwrap();
    let specific = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
    let deep_a = parse_linear_path("/a/b/c/d/e/f//g/*/h").unwrap();
    let deep_b = parse_linear_path("/a/b/c/d/e/f/x/g/y/h").unwrap();
    bench("contain/covers_shallow", quick(), || {
        contain::covers(
            std::hint::black_box(&general),
            std::hint::black_box(&specific),
        )
    });
    bench("contain/covers_deep", quick(), || {
        contain::covers(std::hint::black_box(&deep_a), std::hint::black_box(&deep_b))
    });
}

fn bench_generalize() {
    let p = parse_linear_path("/Security/Symbol").unwrap();
    let q = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
    let r = parse_linear_path("/a/d/b/d").unwrap();
    let s = parse_linear_path("/a/b/d").unwrap();
    bench("generalize/paper_pair", quick(), || {
        generalize_pair(std::hint::black_box(&p), std::hint::black_box(&q))
    });
    bench("generalize/reoccurrence_pair", quick(), || {
        generalize_pair(std::hint::black_box(&s), std::hint::black_box(&r))
    });
}

fn bench_optimizer() {
    let lab = TpoxLab::quick();
    let coll = lab.db.collection(tpox::SECURITY_COLL).unwrap();
    let stats = lab.db.stats_cached(tpox::SECURITY_COLL).unwrap();
    let catalog = lab.db.catalog(tpox::SECURITY_COLL).unwrap();
    let opt = Optimizer::new(coll, stats, catalog);
    let stmt = parse_statement(
        r#"for $s in SECURITY('SDOC')/Security[Yield > 4.5]
           where $s/SecInfo/*/Sector = "Energy" return $s/Name"#,
    )
    .unwrap();
    bench("optimizer/evaluate_mode_scan", quick(), || {
        opt.optimize(std::hint::black_box(&stmt))
    });
    bench("optimizer/enumerate_mode", quick(), || {
        opt.enumerate_indexes(std::hint::black_box(&stmt))
    });
}

fn bench_execution() {
    let mut lab = TpoxLab::quick();
    let name = tpox::SECURITY_COLL;
    {
        let (collection, catalog, _) = lab.db.parts_mut(name).unwrap();
        catalog.create_physical(
            collection,
            &parse_linear_path("/Security/Symbol").unwrap(),
            xia_xpath::ValueKind::Str,
        );
    }
    lab.db.runstats_all();
    let (collection, catalog, stats) = lab.db.parts(name).unwrap();
    let opt = Optimizer::new(collection, stats, catalog);
    let stmt = parse_statement(
        r#"for $s in SECURITY('SDOC')/Security where $s/Symbol = "SYM00007" return $s"#,
    )
    .unwrap();
    let indexed_plan = opt.optimize(&stmt);
    let scan_plan = xia_optimizer::Plan {
        access: xia_optimizer::AccessChoice::Scan,
        ..indexed_plan.clone()
    };
    bench("exec/index_probe", quick(), || {
        execute_query(&stmt, &indexed_plan, collection, catalog).unwrap()
    });
    bench("exec/full_scan", quick(), || {
        execute_query(&stmt, &scan_plan, collection, catalog).unwrap()
    });
}

fn bench_searches() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let budget = set.config_size(&Advisor::all_index_config(&set));
    for algo in SearchAlgorithm::ALL {
        bench(
            &format!("search/{}", algo.name()),
            Duration::from_secs(1),
            || Advisor::recommend_prepared(&mut lab.db, &workload, &set, budget, algo, &params),
        );
    }
}

fn bench_benefit_cache() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let all = set.basic_ids();
    {
        let mut ev = BenefitEvaluator::new(&mut lab.db, &workload, &set);
        ev.benefit(&all); // warm the cache
        bench("benefit/cached", Duration::from_secs(1), || {
            ev.benefit(std::hint::black_box(&all))
        });
    }
    {
        let mut ev = BenefitEvaluator::new(&mut lab.db, &workload, &set);
        ev.use_cache = false;
        bench("benefit/uncached", Duration::from_secs(1), || {
            ev.benefit(std::hint::black_box(&all))
        });
    }
}

fn bench_storage() {
    let lab = TpoxLab::quick();
    let coll = lab.db.collection(tpox::SECURITY_COLL).unwrap();
    bench("storage/runstats", quick(), || {
        xia_storage::runstats(std::hint::black_box(coll))
    });
    bench("storage/build_physical_index", quick(), || {
        xia_storage::PhysicalIndex::build(
            std::hint::black_box(coll),
            &parse_linear_path("/Security/Symbol").unwrap(),
            xia_xpath::ValueKind::Str,
        )
    });
    bench("storage/persist_save", quick(), || {
        let mut buf = Vec::with_capacity(1 << 20);
        xia_storage::persist::save_database_to(std::hint::black_box(&lab.db), &mut buf).unwrap();
        buf
    });
    let mut buf = Vec::new();
    xia_storage::persist::save_database_to(&lab.db, &mut buf).unwrap();
    bench("storage/persist_load", quick(), || {
        xia_storage::persist::load_database_from(&mut std::io::Cursor::new(std::hint::black_box(
            &buf,
        )))
        .unwrap()
    });
}

/// The telemetry counters must cost nanoseconds whether the handle is live
/// or off — this is the "bounded overhead" check in measurable form.
fn bench_telemetry() {
    let on = Telemetry::new();
    let off = Telemetry::off();
    bench("obs/counter_incr_enabled", quick(), || {
        on.incr(std::hint::black_box(Counter::OptimizerEvaluateCalls))
    });
    bench("obs/counter_incr_off", quick(), || {
        off.incr(std::hint::black_box(Counter::OptimizerEvaluateCalls))
    });
    bench("obs/span_enter_exit", quick(), || on.span("bench_phase"));
}

/// The fault handle mirrors the telemetry contract: disabled, a roll is a
/// null check; the full advise loop with the default (off) injector should
/// match the plain `search/*` numbers above — that is the "no measurable
/// overhead when disabled" acceptance check in measurable form.
fn bench_faults() {
    use xia_fault::{FaultInjector, FaultSite};
    let off = FaultInjector::off();
    let on = FaultInjector::seeded(7).with_rate(FaultSite::OptimizerCost, 0.01);
    bench("fault/roll_off", quick(), || {
        off.roll(std::hint::black_box(FaultSite::OptimizerCost))
            .is_ok()
    });
    bench("fault/roll_seeded", quick(), || {
        on.roll(std::hint::black_box(FaultSite::OptimizerCost))
            .is_ok()
    });
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default(); // faults: FaultInjector::off()
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let budget = set.config_size(&Advisor::all_index_config(&set));
    bench("fault/advise_injector_off", Duration::from_secs(1), || {
        Advisor::recommend_prepared(
            &mut lab.db,
            &workload,
            &set,
            budget,
            SearchAlgorithm::GreedyHeuristics,
            &params,
        )
    });
}

fn main() {
    println!("xia micro-benchmarks (internal harness; mean over a fixed window)");
    bench_containment();
    bench_generalize();
    bench_optimizer();
    bench_execution();
    bench_searches();
    bench_benefit_cache();
    bench_storage();
    bench_telemetry();
    bench_faults();
}
