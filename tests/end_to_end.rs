//! End-to-end integration: TPoX data → advisor → materialized indexes →
//! physical execution, crossing every crate in the workspace.

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_bench::lab::{actual_execution, estimated_workload_cost, TpoxLab};
use xia_optimizer::{execute_query, Optimizer};
use xia_workloads::tpox;

#[test]
fn recommended_indexes_speed_up_real_execution() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let budget = set.config_size(&Advisor::all_index_config(&set));
    let rec = Advisor::recommend_prepared(
        &mut lab.db,
        &workload,
        &set,
        budget,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(!rec.config.is_empty());

    let baseline = actual_execution(&mut lab.db, &workload, &set, &[]);
    let indexed = actual_execution(&mut lab.db, &workload, &set, &rec.config);
    // Same results, fewer nodes touched.
    assert_eq!(baseline.docs, indexed.docs);
    assert!(
        indexed.nodes < baseline.nodes / 2,
        "indexed={} baseline={}",
        indexed.nodes,
        baseline.nodes
    );
    assert!(
        indexed.indexed_statements >= 5,
        "only {} statements used indexes",
        indexed.indexed_statements
    );
}

#[test]
fn recommended_indexes_are_used_by_the_optimizer() {
    // The paper's tight-coupling guarantee: recommended indexes are
    // actually used in plans.
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let budget = set.config_size(&Advisor::all_index_config(&set));
    let rec = Advisor::recommend_prepared(
        &mut lab.db,
        &workload,
        &set,
        budget,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    Advisor::materialize(&mut lab.db, &set, &rec.config);
    lab.db.runstats_all();

    let mut used = std::collections::HashSet::new();
    for entry in workload.entries() {
        let coll = entry.statement.collection();
        let (collection, catalog, stats) = lab.db.parts(coll).unwrap();
        let optimizer = Optimizer::new(collection, stats, catalog);
        let plan = optimizer.optimize(&entry.statement);
        for ix in plan.used_indexes() {
            used.insert((coll.to_string(), ix));
        }
    }
    // Every recommended index serves at least one statement.
    let mut total_defined = 0;
    for coll in lab.db.collection_names().iter().map(|s| s.to_string()) {
        let catalog = lab.db.catalog(&coll).unwrap();
        for def in catalog.iter() {
            total_defined += 1;
            assert!(
                used.contains(&(coll.clone(), def.id)),
                "recommended index {} on {} unused",
                def.pattern,
                coll
            );
        }
    }
    assert_eq!(total_defined, rec.config.len());
}

#[test]
fn estimated_and_actual_speedups_agree_in_direction() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let all = Advisor::all_index_config(&set);

    let est_base = estimated_workload_cost(&mut lab.db, &workload, &set, &[]);
    let est_all = estimated_workload_cost(&mut lab.db, &workload, &set, &all);
    assert!(est_all < est_base);

    let act_base = actual_execution(&mut lab.db, &workload, &set, &[]);
    let act_all = actual_execution(&mut lab.db, &workload, &set, &all);
    assert!(act_all.nodes < act_base.nodes);
}

#[test]
fn update_workload_discourages_wide_indexes() {
    // With a heavy update mix, the advisor must account for maintenance:
    // the benefit of every index drops relative to the query-only case.
    let mut lab = TpoxLab::quick();
    let queries_only = lab.workload();
    let with_updates = {
        let mut texts = tpox::queries(&lab.cfg);
        for _ in 0..20 {
            texts.extend(tpox::update_mix(&lab.cfg));
        }
        xia_workloads::Workload::from_texts(texts.iter().map(|s| s.as_str())).unwrap()
    };
    let params = AdvisorParams::default();

    let set_q = Advisor::prepare(&mut lab.db, &queries_only, &params);
    let sym = set_q
        .lookup(
            "SDOC",
            &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
            xia_xpath::ValueKind::Str,
        )
        .unwrap();
    let mut ev_q = xia_advisor::BenefitEvaluator::new(&mut lab.db, &queries_only, &set_q);
    let b_queries = ev_q.benefit(&[sym]);
    drop(ev_q);

    let set_u = Advisor::prepare(&mut lab.db, &with_updates, &params);
    let sym_u = set_u
        .lookup(
            "SDOC",
            &xia_xpath::parse_linear_path("/Security/Symbol").unwrap(),
            xia_xpath::ValueKind::Str,
        )
        .unwrap();
    let mut ev_u = xia_advisor::BenefitEvaluator::new(&mut lab.db, &with_updates, &set_u);
    let mc = ev_u.mc_total(sym_u);
    assert!(mc > 0.0);
    let b_updates = ev_u.benefit(&[sym_u]);
    assert!(
        b_updates < b_queries + 1e-9 || mc > 0.0,
        "maintenance cost must be charged"
    );
}

#[test]
fn multi_collection_workload_recommends_per_collection_indexes() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let params = AdvisorParams::default();
    let rec = Advisor::recommend(
        &mut lab.db,
        &workload,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    let colls: std::collections::HashSet<&str> =
        rec.indexes.iter().map(|i| i.collection.as_str()).collect();
    assert!(colls.contains("SDOC"));
    assert!(colls.contains("ODOC"));
    assert!(colls.contains("CDOC"));
}

#[test]
fn advisor_handles_or_and_sqlxml_statements() {
    // Disjunctions and SQL/XML statements flow through the whole pipeline:
    // enumeration, search, materialization, execution.
    let mut lab = TpoxLab::quick();
    let workload = xia_workloads::Workload::from_texts([
        // OR branches become candidates.
        r#"for $s in SECURITY('SDOC')/Security[Yield > 9.5 or PE >= 55]
           return $s/Symbol"#,
        // SQL/XML surface syntax.
        r#"SELECT XMLQUERY('$d/Security/Name') FROM SDOC
           WHERE XMLEXISTS('$d/Security[Symbol = "SYM00003"]')"#,
    ])
    .unwrap();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut lab.db, &workload, &params);
    let pats: Vec<String> = set.iter().map(|c| c.pattern.to_string()).collect();
    assert!(pats.contains(&"/Security/Yield".to_string()), "{pats:?}");
    assert!(pats.contains(&"/Security/PE".to_string()), "{pats:?}");
    assert!(pats.contains(&"/Security/Symbol".to_string()), "{pats:?}");

    let rec = Advisor::recommend_prepared(
        &mut lab.db,
        &workload,
        &set,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(rec.speedup > 1.0, "speedup {}", rec.speedup);
    // Physical execution agrees with a scan on the OR query.
    let baseline = xia_bench::lab::actual_execution(&mut lab.db, &workload, &set, &[]);
    let indexed = xia_bench::lab::actual_execution(&mut lab.db, &workload, &set, &rec.config);
    assert_eq!(baseline.docs, indexed.docs);
}

#[test]
fn executing_a_query_against_each_collection_works() {
    let mut lab = TpoxLab::quick();
    for (coll, q) in [
        ("SDOC", r#"collection('SDOC')/Security[Yield > 5]"#),
        ("ODOC", r#"collection('ODOC')/Order[Quantity >= 5000]"#),
        ("CDOC", r#"collection('CDOC')/Customer[Premium = "Y"]"#),
    ] {
        let stmt = xia_xpath::parse_statement(q).unwrap();
        lab.db.runstats_all();
        let (collection, catalog, stats) = lab.db.parts(coll).unwrap();
        let optimizer = Optimizer::new(collection, stats, catalog);
        let plan = optimizer.optimize(&stmt);
        let res = execute_query(&stmt, &plan, collection, catalog).unwrap();
        assert!(res.docs_matched > 0, "{q} matched nothing");
    }
}
