//! Property-based tests over the core path algebra and data structures.
//!
//! Cases are generated with the workspace's internal deterministic PRNG
//! (`xia_workloads::prng`) rather than `proptest` — the build environment
//! has no registry access. Each test fixes its seed, so failures are
//! reproducible; the printed case in the assertion message is the
//! counterexample.

use xia_advisor::{generalize_pair, StmtSet};
use xia_workloads::prng::Prng;
use xia_xml::{parse_document, write_document, Vocabulary};
use xia_xpath::{contain, parse_linear_path, Axis, LinearPath, LinearStep, NameTest};

/// Small label alphabet so containment relations actually occur.
const LABELS: [&str; 5] = ["a", "b", "c", "Security", "Sector"];

fn label(rng: &mut Prng) -> String {
    LABELS[rng.gen_range(0..LABELS.len())].to_string()
}

fn step(rng: &mut Prng) -> LinearStep {
    let axis = if rng.gen_bool(0.5) {
        Axis::Child
    } else {
        Axis::Descendant
    };
    let test = if rng.gen_bool(0.25) {
        NameTest::Wildcard
    } else {
        NameTest::name_of(&label(rng))
    };
    LinearStep { axis, test }
}

fn linear_path(rng: &mut Prng) -> LinearPath {
    let n = rng.gen_range(1..6);
    LinearPath::new((0..n).map(|_| step(rng)).collect())
}

fn label_seq(rng: &mut Prng) -> Vec<String> {
    let n = rng.gen_range(0..6);
    (0..n).map(|_| label(rng)).collect()
}

#[test]
fn containment_is_reflexive() {
    let mut rng = Prng::seed_from_u64(0x01);
    for _ in 0..256 {
        let p = linear_path(&mut rng);
        assert!(contain::covers(&p, &p), "{p} does not cover itself");
    }
}

#[test]
fn containment_is_transitive() {
    let mut rng = Prng::seed_from_u64(0x02);
    for _ in 0..2000 {
        let a = linear_path(&mut rng);
        let b = linear_path(&mut rng);
        let c = linear_path(&mut rng);
        if contain::covers(&a, &b) && contain::covers(&b, &c) {
            assert!(contain::covers(&a, &c), "{a} ⊇ {b} ⊇ {c} but not {a} ⊇ {c}");
        }
    }
}

#[test]
fn containment_agrees_with_matching() {
    // If g covers s, every word matched by s is matched by g.
    let mut rng = Prng::seed_from_u64(0x03);
    for _ in 0..2000 {
        let g = linear_path(&mut rng);
        let s = linear_path(&mut rng);
        let w = label_seq(&mut rng);
        if contain::covers(&g, &s) {
            let labels: Vec<&str> = w.iter().map(|x| x.as_str()).collect();
            if s.matches_labels(&labels) {
                assert!(
                    g.matches_labels(&labels),
                    "{g} covers {s} but misses {labels:?}"
                );
            }
        }
    }
}

#[test]
fn universal_covers_all() {
    let mut rng = Prng::seed_from_u64(0x04);
    for _ in 0..256 {
        let p = linear_path(&mut rng);
        assert!(contain::covers(&LinearPath::universal(), &p), "{p}");
    }
}

#[test]
fn display_parse_round_trip() {
    let mut rng = Prng::seed_from_u64(0x05);
    for _ in 0..256 {
        let p = linear_path(&mut rng);
        let s = p.to_string();
        let q = parse_linear_path(&s).expect("display must re-parse");
        assert_eq!(p, q, "round trip through `{s}`");
    }
}

#[test]
fn rewrite_rule0_preserves_matching() {
    // Rule 0 only *widens* the language (/* middle steps become //), so
    // any match of the original is a match of the rewrite.
    let mut rng = Prng::seed_from_u64(0x06);
    for _ in 0..1000 {
        let p = linear_path(&mut rng);
        let w = label_seq(&mut rng);
        let r = p.rewrite_rule0();
        let labels: Vec<&str> = w.iter().map(|x| x.as_str()).collect();
        if p.matches_labels(&labels) {
            assert!(r.matches_labels(&labels), "{p} -> {r} lost {labels:?}");
        }
        // And the rewrite covers the original pattern as a language.
        assert!(contain::covers(&r, &p), "{r} !⊇ {p}");
    }
}

#[test]
fn generalization_covers_both_inputs() {
    let mut rng = Prng::seed_from_u64(0x07);
    for _ in 0..512 {
        let a = linear_path(&mut rng);
        let b = linear_path(&mut rng);
        for g in generalize_pair(&a, &b) {
            assert!(contain::covers(&g, &a), "{g} !⊇ {a}");
            assert!(contain::covers(&g, &b), "{g} !⊇ {b}");
        }
    }
}

#[test]
fn generalization_is_symmetric() {
    let mut rng = Prng::seed_from_u64(0x08);
    for _ in 0..512 {
        let a = linear_path(&mut rng);
        let b = linear_path(&mut rng);
        let mut ab = generalize_pair(&a, &b);
        let mut ba = generalize_pair(&b, &a);
        ab.sort();
        ba.sort();
        assert_eq!(ab, ba, "generalize({a}, {b}) not symmetric");
    }
}

#[test]
fn stmtset_behaves_like_btreeset() {
    let mut rng = Prng::seed_from_u64(0x09);
    for _ in 0..256 {
        let n = rng.gen_range(0..60);
        let mut set = StmtSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n {
            let idx = rng.gen_range(0..200usize);
            set.insert(idx);
            model.insert(idx);
        }
        assert_eq!(set.len(), model.len());
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
        for i in 0..200 {
            assert_eq!(set.contains(i), model.contains(&i));
        }
    }
}

#[test]
fn stmtset_union_is_union() {
    let mut rng = Prng::seed_from_u64(0x0a);
    for _ in 0..256 {
        let xs: Vec<usize> = (0..rng.gen_range(0..30))
            .map(|_| rng.gen_range(0..128usize))
            .collect();
        let ys: Vec<usize> = (0..rng.gen_range(0..30))
            .map(|_| rng.gen_range(0..128usize))
            .collect();
        let mut a = StmtSet::new();
        for &x in &xs {
            a.insert(x);
        }
        let mut b = StmtSet::new();
        for &y in &ys {
            b.insert(y);
        }
        let mut u = a.clone();
        u.union_with(&b);
        let model: std::collections::BTreeSet<usize> =
            xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            model.into_iter().collect::<Vec<_>>()
        );
        assert!(u.is_superset(&a) && u.is_superset(&b));
    }
}

/// Generalization-DAG invariants: every parent pattern covers every child
/// pattern semantically, kinds and collections agree along edges, and
/// roots have no parents.
#[test]
fn generalization_dag_parents_cover_children() {
    use xia_advisor::candidate::CandOrigin;
    use xia_advisor::{generalize_set, CandidateSet};

    let mut rng = Prng::seed_from_u64(0x0b);
    for _ in 0..48 {
        let leaves: Vec<Vec<String>> = (0..rng.gen_range(2..6))
            .map(|_| (0..rng.gen_range(1..4)).map(|_| label(&mut rng)).collect())
            .collect();
        let mut set = CandidateSet::new();
        for path in &leaves {
            let mut steps = vec!["root".to_string()];
            steps.extend(path.iter().cloned());
            let text = format!("/{}", steps.join("/"));
            let pattern = parse_linear_path(&text).expect("constructed path parses");
            set.insert("C", pattern, xia_xpath::ValueKind::Str, CandOrigin::Basic);
        }
        generalize_set(&mut set);
        for c in set.iter() {
            for &child in &c.children {
                let ch = set.get(child);
                assert_eq!(&c.collection, &ch.collection);
                assert_eq!(c.kind, ch.kind);
                assert!(
                    contain::covers(&c.pattern, &ch.pattern),
                    "{} does not cover child {}",
                    c.pattern,
                    ch.pattern
                );
                assert!(ch.parents.contains(&c.id));
            }
        }
        for root in set.roots() {
            assert!(set.get(root).parents.is_empty());
        }
    }
}

/// Fast-path parity: the semi-naive generalization fixpoint produces the
/// same candidate set — patterns, origins, DAG edge vectors in stored
/// order, affected sets — as the naive Algorithm 1 loop, on randomized
/// multi-collection, multi-kind workloads.
#[test]
fn semi_naive_fixpoint_matches_naive() {
    use xia_advisor::candidate::CandOrigin;
    use xia_advisor::{generalize_set_fast, generalize_set_naive, CandidateSet};
    use xia_obs::EventJournal;
    use xia_obs::Telemetry;

    let mut rng = Prng::seed_from_u64(0x0c);
    let colls = ["C1", "C2"];
    let kinds = [xia_xpath::ValueKind::Str, xia_xpath::ValueKind::Num];
    for _ in 0..48 {
        let mut seeds = Vec::new();
        for i in 0..rng.gen_range(2..8) {
            let depth = rng.gen_range(1..4);
            let mut steps = vec!["root".to_string()];
            steps.extend((0..depth).map(|_| label(&mut rng)));
            seeds.push((
                colls[rng.gen_range(0..colls.len())],
                format!("/{}", steps.join("/")),
                kinds[rng.gen_range(0..kinds.len())],
                i,
            ));
        }
        let build = |seeds: &[(&str, String, xia_xpath::ValueKind, usize)]| {
            let mut set = CandidateSet::new();
            for (coll, text, kind, stmt) in seeds {
                let pattern = parse_linear_path(text).expect("constructed path parses");
                let id = set.insert(coll, pattern, *kind, CandOrigin::Basic);
                set.get_mut(id).affected.insert(*stmt);
            }
            set
        };
        let mut naive = build(&seeds);
        let mut fast = build(&seeds);
        let created_naive =
            generalize_set_naive(&mut naive, &Telemetry::off(), &EventJournal::off());
        let created_fast = generalize_set_fast(&mut fast, &Telemetry::off(), &EventJournal::off());
        assert_eq!(created_naive, created_fast, "created ids diverge");
        assert_eq!(naive.len(), fast.len());
        for (n, f) in naive.iter().zip(fast.iter()) {
            assert_eq!(n.id, f.id);
            assert_eq!(n.pattern, f.pattern, "pattern diverges at {:?}", n.id);
            assert_eq!(
                (&n.collection, n.kind, n.origin),
                (&f.collection, f.kind, f.origin)
            );
            assert_eq!(n.children, f.children, "children diverge at {}", n.pattern);
            assert_eq!(n.parents, f.parents, "parents diverge at {}", n.pattern);
            assert_eq!(
                n.affected.iter().collect::<Vec<_>>(),
                f.affected.iter().collect::<Vec<_>>()
            );
        }
    }
}

/// The name-mask fast reject is sound: whenever the mask pre-check says
/// "cannot cover", the full NFA containment search agrees. (Completeness
/// is not required — a bloom collision may let a non-covering pair through
/// to the full search — but a true containment must never be rejected.)
#[test]
fn name_mask_never_rejects_true_containment() {
    let mut rng = Prng::seed_from_u64(0x0d);
    for _ in 0..4000 {
        let g = linear_path(&mut rng);
        let s = linear_path(&mut rng);
        if contain::covers(&g, &s) {
            assert_eq!(
                g.name_mask() & !s.name_mask(),
                0,
                "mask would reject true containment {g} ⊇ {s}"
            );
        }
    }
}

/// The interner round-trips every name that survives a parse: the symbol
/// resolved from a parsed step yields the original text, and re-interning
/// that text yields the same symbol.
#[test]
fn interner_round_trips_parsed_names() {
    let mut rng = Prng::seed_from_u64(0x0e);
    for i in 0..512 {
        // Mix the shared label alphabet with fresh unique names so both
        // the read-lock hit path and the insert path are exercised.
        let name = if rng.gen_bool(0.5) {
            label(&mut rng)
        } else {
            format!("uniq_pt_{i}")
        };
        let text = format!("/{name}//{name}");
        let p = parse_linear_path(&text).expect("constructed path parses");
        for step in &p.steps {
            let sym = step.test.sym().expect("named step");
            assert_eq!(sym.as_str(), name, "symbol text diverged");
            assert_eq!(xia_xpath::intern(&name), sym, "re-interning diverged");
        }
    }
}

/// Plan-equivalence: for random data and random queries over it, a forced
/// full scan and the optimizer's chosen (possibly index-ANDing) plan must
/// produce identical results.
#[test]
fn index_plans_agree_with_scan_plans() {
    use xia_advisor::{Advisor, AdvisorParams};
    use xia_optimizer::{execute_query, AccessChoice, Optimizer, Plan};
    use xia_storage::Database;
    use xia_workloads::synthetic::{generate_queries, SyntheticConfig};
    use xia_workloads::tpox::{self, TpoxConfig};
    use xia_workloads::Workload;

    let mut case_rng = Prng::seed_from_u64(0x0c);
    for _ in 0..8 {
        let seed = case_rng.gen_range(0u64..1000);
        let wl_seed = case_rng.gen_range(0u64..1000);
        let mut db = Database::new();
        tpox::generate(
            &mut db,
            &TpoxConfig {
                securities: 40,
                orders: 60,
                customers: 30,
                seed,
            },
        );
        let queries = generate_queries(
            db.collection("SDOC").expect("generated"),
            &SyntheticConfig {
                queries: 6,
                seed: wl_seed,
                ..Default::default()
            },
        );
        let workload = Workload::from_texts(queries.iter().map(|s| s.as_str())).expect("parse");
        // Materialize every basic candidate physically.
        let set = Advisor::prepare(&mut db, &workload, &AdvisorParams::default());
        let basics = Advisor::all_index_config(&set);
        Advisor::materialize(&mut db, &set, &basics);
        db.runstats_all();

        for entry in workload.entries() {
            let coll = entry.statement.collection();
            let (collection, catalog, stats) = db.parts(coll).expect("collection exists");
            let optimizer = Optimizer::new(collection, stats, catalog);
            let plan = optimizer.optimize(&entry.statement);
            let scan = Plan {
                access: AccessChoice::Scan,
                ..plan.clone()
            };
            let via_plan =
                execute_query(&entry.statement, &plan, collection, catalog).expect("exec");
            let via_scan =
                execute_query(&entry.statement, &scan, collection, catalog).expect("exec");
            assert_eq!(
                via_plan.docs_matched, via_scan.docs_matched,
                "plan {} disagrees with scan on `{}` (seed {seed}/{wl_seed})",
                plan, entry.text
            );
            assert_eq!(via_plan.items, via_scan.items);
        }
    }
}

/// Random well-formed text content, biased toward entity references and
/// numerics so value decoding and the numeric column both get exercised.
fn random_text(rng: &mut Prng) -> String {
    match rng.gen_range(0..6) {
        0 => "plain value".to_string(),
        1 => format!("{}", rng.gen_range(0..50)),
        2 => format!("{}.5", rng.gen_range(0..20)),
        3 => "a &amp; b &lt;ok&gt; &quot;q&quot;".to_string(),
        4 => "&#65;&#x42;c".to_string(),
        _ => "  spaced  ".to_string(),
    }
}

const CDATA_BLOCKS: [&str; 3] = [
    "<![CDATA[keep & raw &# and &foo; verbatim]]>",
    "<![CDATA[1 < 2 > 0]]>",
    "<![CDATA[x]]>",
];

/// Random well-formed XML element: attributes (with entities), text,
/// CDATA, self-closing tags, mixed children, stray whitespace.
fn random_xml_element(rng: &mut Prng, depth: usize, out: &mut String) {
    let name = label(rng);
    out.push('<');
    out.push_str(&name);
    for i in 0..rng.gen_range(0..3) {
        out.push_str(&format!(" at{i}=\"{}\"", random_text(rng).trim()));
    }
    if rng.gen_bool(0.15) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if depth == 0 || rng.gen_bool(0.4) {
        match rng.gen_range(0..3) {
            0 => out.push_str(&random_text(rng)),
            1 => out.push_str(CDATA_BLOCKS[rng.gen_range(0..CDATA_BLOCKS.len())]),
            _ => {}
        }
    } else {
        for _ in 0..rng.gen_range(1..4) {
            if rng.gen_bool(0.3) {
                out.push_str("\n  ");
            }
            random_xml_element(rng, depth - 1, out);
        }
        if rng.gen_bool(0.3) {
            out.push('\n');
        }
    }
    out.push_str(&format!("</{name}>"));
}

/// Tentpole parity property: the streaming (SAX-style) parse path must
/// produce exactly the same document arena *and* the same vocabulary
/// (name/path intern order) as the DOM parser, over randomized documents
/// covering CDATA, entity references, attributes, mixed content, and
/// self-closing tags — plus nesting at the depth cap.
#[test]
fn streaming_parse_matches_dom() {
    use xia_xml::{parse_document_streaming, MAX_XML_DEPTH};

    let mut rng = Prng::seed_from_u64(0x12);
    for case in 0..256 {
        let mut text = String::new();
        random_xml_element(&mut rng, 4, &mut text);
        let mut v_dom = Vocabulary::new();
        let d_dom = parse_document(&text, &mut v_dom)
            .unwrap_or_else(|e| panic!("case {case}: generated XML must parse: {e}\n`{text}`"));
        let mut v_stream = Vocabulary::new();
        let d_stream = parse_document_streaming(&text, &mut v_stream)
            .unwrap_or_else(|e| panic!("case {case}: streaming rejected valid XML: {e}\n`{text}`"));
        assert_eq!(d_dom, d_stream, "case {case}: arenas diverge on `{text}`");
        assert_eq!(
            v_dom, v_stream,
            "case {case}: vocabularies diverge on `{text}`"
        );
    }

    // Nesting one level under the cap parses identically; one level past
    // it, both parsers reject.
    for depth in [MAX_XML_DEPTH - 1, MAX_XML_DEPTH + 1] {
        let text = format!("{}v{}", "<d>".repeat(depth), "</d>".repeat(depth));
        let mut v_dom = Vocabulary::new();
        let dom = parse_document(&text, &mut v_dom);
        let mut v_stream = Vocabulary::new();
        let stream = parse_document_streaming(&text, &mut v_stream);
        match (dom, stream) {
            (Ok(a), Ok(b)) => {
                assert!(depth < MAX_XML_DEPTH, "depth {depth} must be rejected");
                assert_eq!(a, b, "depth {depth}: arenas diverge");
                assert_eq!(v_dom, v_stream, "depth {depth}: vocabularies diverge");
            }
            (Err(_), Err(_)) => {
                assert!(depth >= MAX_XML_DEPTH, "depth {depth} must parse");
            }
            (dom, stream) => panic!(
                "depth {depth}: parsers disagree (dom ok: {}, streaming ok: {})",
                dom.is_ok(),
                stream.is_ok()
            ),
        }
    }
}

/// Columnar statistics parity property: RUNSTATS over the column store
/// must equal the document-scan fallback, for collections fed through the
/// streaming path and the DOM path alike.
#[test]
fn columnar_stats_match_scan() {
    use xia_storage::{runstats, runstats_scan, Collection};

    let mut rng = Prng::seed_from_u64(0x13);
    for case in 0..24 {
        let mut stream = Collection::new("P");
        let mut dom = Collection::new("P");
        for _ in 0..rng.gen_range(1..24) {
            let mut text = String::new();
            random_xml_element(&mut rng, 3, &mut text);
            stream.insert_xml(&text).expect("generated XML parses");
            dom.insert_xml_dom(&text).expect("generated XML parses");
        }
        assert!(
            stream.columns().is_some(),
            "case {case}: columns dirty after pure inserts"
        );
        let columnar = runstats(&stream);
        let scanned = runstats_scan(&stream);
        assert_eq!(columnar, scanned, "case {case}: columnar != scan");
        assert_eq!(
            columnar,
            runstats_scan(&dom),
            "case {case}: streaming != DOM collection stats"
        );
    }
}

fn random_fragment(rng: &mut Prng, max_len: usize) -> String {
    // Bytes biased toward XML metacharacters so structure-shaped inputs
    // actually occur.
    const POOL: &[u8] = b"<>/=\"'&;![]-?ab \t\n\x00";
    let n = rng.gen_range(0..max_len + 1);
    (0..n)
        .map(|_| POOL[rng.gen_range(0..POOL.len())] as char)
        .collect()
}

/// Robustness: the XML parser must never panic, whatever bytes arrive.
#[test]
fn xml_parser_never_panics() {
    let mut rng = Prng::seed_from_u64(0x0d);
    for _ in 0..512 {
        let input = random_fragment(&mut rng, 200);
        let mut vocab = Vocabulary::new();
        let _ = parse_document(&input, &mut vocab);
    }
}

/// Robustness on "almost XML": tag soup assembled from plausible parts.
#[test]
fn xml_parser_never_panics_on_tag_soup() {
    const PARTS: [&str; 13] = [
        "<a>",
        "</a>",
        "<b/>",
        "text",
        "<!--c-->",
        "&amp;",
        "&bogus;",
        "<a attr=\"v\">",
        "<![CDATA[x]]>",
        "<?pi?>",
        "<",
        ">",
        "\"",
    ];
    let mut rng = Prng::seed_from_u64(0x0e);
    for _ in 0..512 {
        let n = rng.gen_range(0..12);
        let input: String = (0..n)
            .map(|_| PARTS[rng.gen_range(0..PARTS.len())])
            .collect();
        let mut vocab = Vocabulary::new();
        let _ = parse_document(&input, &mut vocab);
    }
}

/// Robustness: statement parsing must never panic.
#[test]
fn statement_parser_never_panics() {
    let mut rng = Prng::seed_from_u64(0x0f);
    for _ in 0..512 {
        let input = random_fragment(&mut rng, 160);
        let _ = xia_xpath::parse_statement(&input);
        let _ = xia_xpath::parse_linear_path(&input);
        let _ = xia_xpath::parse_path_expr(&input);
    }
}

/// Robustness on statement-shaped soup.
#[test]
fn statement_parser_never_panics_on_query_soup() {
    const PARTS: [&str; 15] = [
        "for ",
        "$v",
        " in ",
        "C('X')",
        "/a",
        "//*",
        "[b = 1]",
        " where ",
        " return ",
        "let $x := ",
        "order by ",
        "\"lit",
        "4.5e",
        "insert into ",
        "delete from ",
    ];
    let mut rng = Prng::seed_from_u64(0x10);
    for _ in 0..512 {
        let n = rng.gen_range(0..10);
        let input: String = (0..n)
            .map(|_| PARTS[rng.gen_range(0..PARTS.len())])
            .collect();
        let _ = xia_xpath::parse_statement(&input);
    }
}

#[test]
fn document_write_parse_round_trip() {
    const VALUES: [&str; 4] = ["plain", "4.5", "a<b&c>d\"e", "  spaced  "];
    let mut rng = Prng::seed_from_u64(0x11);
    for _ in 0..64 {
        let leaves: Vec<(String, &str)> = (0..rng.gen_range(1..8))
            .map(|_| (label(&mut rng), VALUES[rng.gen_range(0..VALUES.len())]))
            .collect();
        let mut vocab = Vocabulary::new();
        let mut b = xia_xml::DocBuilder::new(&mut vocab, "root");
        for (name, value) in &leaves {
            b.leaf(name, value.trim());
        }
        let doc = b.finish();
        let text = write_document(&doc, &vocab);
        let reparsed = parse_document(&text, &mut vocab).expect("round trip parse");
        assert_eq!(reparsed.len(), doc.len());
        // Every leaf value survives.
        let originals: Vec<&str> = doc
            .nodes()
            .filter_map(|(_, n)| n.value.as_ref())
            .map(|v| v.as_str())
            .collect();
        let reparsed_vals: Vec<String> = reparsed
            .nodes()
            .filter_map(|(_, n)| n.value.as_ref())
            .map(|v| v.as_str().to_string())
            .collect();
        assert_eq!(originals.len(), reparsed_vals.len());
        for (o, r) in originals.iter().zip(reparsed_vals.iter()) {
            assert_eq!(*o, r.as_str());
        }
    }
}

/// Incremental-session parity: observing statements one at a time — the
/// serving path, which extends the prepared candidate set via basic
/// enumeration of just the new statements plus the semi-naive new×all
/// generalization fixpoint — must produce the same candidate *content*
/// (patterns, kinds, origins, DAG edges, affected statements) and an
/// equivalent recommendation as observing everything up front and
/// preparing once. Checked clean and under injected optimizer faults, at
/// jobs 1 and 4. Candidate *ids* are allowed to differ (the two paths
/// interleave basics and generals differently), so the comparison is
/// over canonical keys, not insertion order.
#[test]
fn incremental_prepare_matches_full_preparation() {
    use std::collections::BTreeMap;
    use xia_advisor::{AdvisorParams, CandidateSet, SearchAlgorithm, TuningSession};
    use xia_fault::FaultInjector;
    use xia_storage::Database;
    use xia_workloads::tpox::{self, TpoxConfig};

    type Canon = BTreeMap<String, (String, Vec<usize>, Vec<String>)>;
    fn canon(set: &CandidateSet) -> Canon {
        let key = |c: &xia_advisor::candidate::Candidate| {
            format!("{}|{}|{:?}", c.collection, c.pattern, c.kind)
        };
        set.iter()
            .map(|c| {
                let mut children: Vec<String> =
                    c.children.iter().map(|&id| key(set.get(id))).collect();
                children.sort();
                let mut affected: Vec<usize> = c.affected.iter().collect();
                affected.sort_unstable();
                (key(c), (format!("{:?}", c.origin), affected, children))
            })
            .collect()
    }

    let cfg = TpoxConfig::tiny();
    let texts = tpox::queries(&cfg);
    let specs: [Option<&str>; 2] = [None, Some("optimizer-cost:0.2")];
    for spec in specs {
        for jobs in [1usize, 4] {
            let params = || {
                let faults = match spec {
                    // Same seed on both sides: prepare consumes no
                    // optimizer-cost rolls, so the recommend-phase
                    // streams line up call for call.
                    Some(s) => FaultInjector::seeded(0x5eed)
                        .with_spec(s)
                        .expect("valid spec"),
                    None => FaultInjector::off(),
                };
                AdvisorParams {
                    faults,
                    jobs,
                    ..Default::default()
                }
            };
            let case = format!("spec={spec:?} jobs={jobs}");

            let mut db = Database::new();
            tpox::generate(&mut db, &cfg);
            let mut incremental = TuningSession::new();
            incremental.set_params(params());
            for t in &texts {
                incremental.observe(t).expect("TPoX queries parse");
                // Force a prepare after every observation so each step
                // exercises the incremental extension.
                incremental.candidate_count(&mut db);
            }

            let mut db_full = Database::new();
            tpox::generate(&mut db_full, &cfg);
            let mut full = TuningSession::new();
            full.set_params(params());
            for t in &texts {
                full.observe(t).expect("TPoX queries parse");
            }

            let ci = canon(incremental.candidates(&mut db));
            let cf = canon(full.candidates(&mut db_full));
            assert_eq!(ci.len(), cf.len(), "{case}: candidate counts diverge");
            for (k, v) in &cf {
                assert_eq!(
                    ci.get(k),
                    Some(v),
                    "{case}: candidate {k} diverges between incremental and full preparation"
                );
            }

            let ri = incremental
                .recommend(&mut db, u64::MAX / 2, SearchAlgorithm::GreedyHeuristics)
                .expect("incremental recommend");
            let rf = full
                .recommend(
                    &mut db_full,
                    u64::MAX / 2,
                    SearchAlgorithm::GreedyHeuristics,
                )
                .expect("full recommend");
            let pick = |r: &xia_advisor::Recommendation| {
                let mut v: Vec<String> = r
                    .indexes
                    .iter()
                    .map(|ix| format!("{}|{}|{:?}", ix.collection, ix.pattern, ix.kind))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(
                pick(&ri),
                pick(&rf),
                "{case}: chosen configurations diverge"
            );
            let rel = (ri.est_benefit - rf.est_benefit).abs() / rf.est_benefit.abs().max(1.0);
            assert!(
                rel < 1e-9,
                "{case}: benefits diverge: {} vs {}",
                ri.est_benefit,
                rf.est_benefit
            );
            assert_eq!(
                ri.quarantined.len(),
                rf.quarantined.len(),
                "{case}: quarantine diverges"
            );
        }
    }
}
