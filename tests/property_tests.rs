//! Property-based tests over the core path algebra and data structures.

use proptest::prelude::*;
use xia_advisor::{generalize_pair, StmtSet};
use xia_xml::{parse_document, write_document, Vocabulary};
use xia_xpath::{contain, parse_linear_path, Axis, LinearPath, LinearStep, NameTest};

/// Strategy: small label alphabet so containment relations actually occur.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("Security".to_string()),
        Just("Sector".to_string()),
    ]
}

fn step() -> impl Strategy<Value = LinearStep> {
    (
        prop_oneof![Just(Axis::Child), Just(Axis::Descendant)],
        prop_oneof![
            label().prop_map(NameTest::Name),
            Just(NameTest::Wildcard),
        ],
    )
        .prop_map(|(axis, test)| LinearStep { axis, test })
}

fn linear_path() -> impl Strategy<Value = LinearPath> {
    prop::collection::vec(step(), 1..6).prop_map(LinearPath::new)
}

fn label_seq() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(label(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn containment_is_reflexive(p in linear_path()) {
        prop_assert!(contain::covers(&p, &p));
    }

    #[test]
    fn containment_is_transitive(a in linear_path(), b in linear_path(), c in linear_path()) {
        if contain::covers(&a, &b) && contain::covers(&b, &c) {
            prop_assert!(contain::covers(&a, &c), "{a} ⊇ {b} ⊇ {c} but not {a} ⊇ {c}");
        }
    }

    #[test]
    fn containment_agrees_with_matching(g in linear_path(), s in linear_path(), w in label_seq()) {
        // If g covers s, every word matched by s is matched by g.
        if contain::covers(&g, &s) {
            let labels: Vec<&str> = w.iter().map(|x| x.as_str()).collect();
            if s.matches_labels(&labels) {
                prop_assert!(g.matches_labels(&labels), "{g} covers {s} but misses {labels:?}");
            }
        }
    }

    #[test]
    fn universal_covers_all(p in linear_path()) {
        prop_assert!(contain::covers(&LinearPath::universal(), &p));
    }

    #[test]
    fn display_parse_round_trip(p in linear_path()) {
        let s = p.to_string();
        let q = parse_linear_path(&s).expect("display must re-parse");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn rewrite_rule0_preserves_matching(p in linear_path(), w in label_seq()) {
        // Rule 0 only *widens* the language (/* middle steps become //),
        // so any match of the original is a match of the rewrite.
        let r = p.rewrite_rule0();
        let labels: Vec<&str> = w.iter().map(|x| x.as_str()).collect();
        if p.matches_labels(&labels) {
            prop_assert!(r.matches_labels(&labels), "{p} -> {r} lost {labels:?}");
        }
        // And the rewrite covers the original pattern as a language.
        prop_assert!(contain::covers(&r, &p));
    }

    #[test]
    fn generalization_covers_both_inputs(a in linear_path(), b in linear_path()) {
        for g in generalize_pair(&a, &b) {
            prop_assert!(contain::covers(&g, &a), "{g} !⊇ {a}");
            prop_assert!(contain::covers(&g, &b), "{g} !⊇ {b}");
        }
    }

    #[test]
    fn generalization_is_symmetric(a in linear_path(), b in linear_path()) {
        let mut ab = generalize_pair(&a, &b);
        let mut ba = generalize_pair(&b, &a);
        ab.sort();
        ba.sort();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn stmtset_behaves_like_btreeset(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..60)) {
        let mut set = StmtSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (idx, _) in &ops {
            set.insert(*idx);
            model.insert(*idx);
        }
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        for i in 0..200 {
            prop_assert_eq!(set.contains(i), model.contains(&i));
        }
    }

    #[test]
    fn stmtset_union_is_union(xs in prop::collection::vec(0usize..128, 0..30),
                              ys in prop::collection::vec(0usize..128, 0..30)) {
        let mut a = StmtSet::new();
        for &x in &xs { a.insert(x); }
        let mut b = StmtSet::new();
        for &y in &ys { b.insert(y); }
        let mut u = a.clone();
        u.union_with(&b);
        let model: std::collections::BTreeSet<usize> =
            xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
        prop_assert!(u.is_superset(&a) && u.is_superset(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generalization-DAG invariants: every parent pattern covers every
    /// child pattern semantically, kinds and collections agree along
    /// edges, and roots have no parents.
    #[test]
    fn generalization_dag_parents_cover_children(
        leaves in prop::collection::vec(
            prop::collection::vec(label(), 1..4),
            2..6
        )
    ) {
        use xia_advisor::{generalize_set, CandidateSet};
        use xia_advisor::candidate::CandOrigin;

        let mut set = CandidateSet::new();
        for path in &leaves {
            let mut steps = vec!["root".to_string()];
            steps.extend(path.iter().cloned());
            let text = format!("/{}", steps.join("/"));
            let pattern = parse_linear_path(&text).expect("constructed path parses");
            set.insert("C", pattern, xia_xpath::ValueKind::Str, CandOrigin::Basic);
        }
        generalize_set(&mut set);
        for c in set.iter() {
            for &child in &c.children {
                let ch = set.get(child);
                prop_assert_eq!(&c.collection, &ch.collection);
                prop_assert_eq!(c.kind, ch.kind);
                prop_assert!(
                    contain::covers(&c.pattern, &ch.pattern),
                    "{} does not cover child {}",
                    c.pattern,
                    ch.pattern
                );
                prop_assert!(ch.parents.contains(&c.id));
            }
        }
        for root in set.roots() {
            prop_assert!(set.get(root).parents.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Plan-equivalence: for random data and random queries over it, a
    /// forced full scan and the optimizer's chosen (possibly index-ANDing)
    /// plan must produce identical results.
    #[test]
    fn index_plans_agree_with_scan_plans(seed in 0u64..1000, wl_seed in 0u64..1000) {
        use xia_advisor::{Advisor, AdvisorParams};
        use xia_optimizer::{execute_query, AccessChoice, Optimizer, Plan};
        use xia_storage::Database;
        use xia_workloads::synthetic::{generate_queries, SyntheticConfig};
        use xia_workloads::tpox::{self, TpoxConfig};
        use xia_workloads::Workload;

        let mut db = Database::new();
        tpox::generate(
            &mut db,
            &TpoxConfig {
                securities: 40,
                orders: 60,
                customers: 30,
                seed,
            },
        );
        let queries = generate_queries(
            db.collection("SDOC").expect("generated"),
            &SyntheticConfig {
                queries: 6,
                seed: wl_seed,
                ..Default::default()
            },
        );
        let workload = Workload::from_texts(queries.iter().map(|s| s.as_str())).expect("parse");
        // Materialize every basic candidate physically.
        let set = Advisor::prepare(&mut db, &workload, &AdvisorParams::default());
        let basics = Advisor::all_index_config(&set);
        Advisor::materialize(&mut db, &set, &basics);
        db.runstats_all();

        for entry in workload.entries() {
            let coll = entry.statement.collection();
            let (collection, catalog, stats) = db.parts(coll).expect("collection exists");
            let optimizer = Optimizer::new(collection, stats, catalog);
            let plan = optimizer.optimize(&entry.statement);
            let scan = Plan {
                access: AccessChoice::Scan,
                ..plan.clone()
            };
            let via_plan = execute_query(&entry.statement, &plan, collection, catalog).expect("exec");
            let via_scan = execute_query(&entry.statement, &scan, collection, catalog).expect("exec");
            prop_assert_eq!(
                via_plan.docs_matched,
                via_scan.docs_matched,
                "plan {} disagrees with scan on `{}`",
                plan,
                entry.text
            );
            prop_assert_eq!(via_plan.items, via_scan.items);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Robustness: the XML parser must never panic, whatever bytes arrive.
    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let mut vocab = Vocabulary::new();
        let _ = parse_document(&input, &mut vocab);
    }

    /// Robustness on "almost XML": tag soup assembled from plausible parts.
    #[test]
    fn xml_parser_never_panics_on_tag_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b/>".to_string()),
                Just("text".to_string()),
                Just("<!--c-->".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("<a attr=\"v\">".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<?pi?>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("\"".to_string()),
            ],
            0..12
        )
    ) {
        let input: String = parts.concat();
        let mut vocab = Vocabulary::new();
        let _ = parse_document(&input, &mut vocab);
    }

    /// Robustness: statement parsing must never panic.
    #[test]
    fn statement_parser_never_panics(input in ".{0,160}") {
        let _ = xia_xpath::parse_statement(&input);
        let _ = xia_xpath::parse_linear_path(&input);
        let _ = xia_xpath::parse_path_expr(&input);
    }

    /// Robustness on statement-shaped soup.
    #[test]
    fn statement_parser_never_panics_on_query_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("for ".to_string()),
                Just("$v".to_string()),
                Just(" in ".to_string()),
                Just("C('X')".to_string()),
                Just("/a".to_string()),
                Just("//*".to_string()),
                Just("[b = 1]".to_string()),
                Just(" where ".to_string()),
                Just(" return ".to_string()),
                Just("let $x := ".to_string()),
                Just("order by ".to_string()),
                Just("\"lit".to_string()),
                Just("4.5e".to_string()),
                Just("insert into ".to_string()),
                Just("delete from ".to_string()),
            ],
            0..10
        )
    ) {
        let input: String = parts.concat();
        let _ = xia_xpath::parse_statement(&input);
    }
}

/// XML text strategy: build documents programmatically, then check the
/// writer/parser round trip.
fn xml_value() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("plain".to_string()),
        Just("4.5".to_string()),
        Just("a<b&c>d\"e".to_string()),
        Just("  spaced  ".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn document_write_parse_round_trip(
        leaves in prop::collection::vec((label(), xml_value()), 1..8)
    ) {
        let mut vocab = Vocabulary::new();
        let mut b = xia_xml::DocBuilder::new(&mut vocab, "root");
        for (name, value) in &leaves {
            b.leaf(name, value.trim());
        }
        let doc = b.finish();
        let text = write_document(&doc, &vocab);
        let reparsed = parse_document(&text, &mut vocab).expect("round trip parse");
        prop_assert_eq!(reparsed.len(), doc.len());
        // Every leaf value survives.
        let originals: Vec<&str> = doc.nodes().filter_map(|(_, n)| n.value.as_ref()).map(|v| v.as_str()).collect();
        let reparsed_vals: Vec<String> = reparsed.nodes().filter_map(|(_, n)| n.value.as_ref()).map(|v| v.as_str().to_string()).collect();
        prop_assert_eq!(originals.len(), reparsed_vals.len());
        for (o, r) in originals.iter().zip(reparsed_vals.iter()) {
            prop_assert_eq!(*o, r.as_str());
        }
    }
}
