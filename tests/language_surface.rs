//! Language-surface integration: the extended TPoX and XMark query sets
//! (existence, disjunction, `let`, `order by`, SQL/XML) must parse, plan,
//! execute, and produce results consistent with full scans.

use xia_optimizer::{execute_query, AccessChoice, Optimizer, Plan};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::xmark::{self, XmarkConfig};
use xia_workloads::Workload;

fn check_workload(db: &mut Database, workload: &Workload) {
    db.runstats_all();
    let mut matched_any = false;
    for entry in workload.entries() {
        let coll = entry.statement.collection();
        let (collection, catalog, stats) = db
            .parts(coll)
            .unwrap_or_else(|| panic!("collection {coll} missing"));
        let optimizer = Optimizer::new(collection, stats, catalog);
        let plan = optimizer.optimize(&entry.statement);
        let via_plan = execute_query(&entry.statement, &plan, collection, catalog)
            .unwrap_or_else(|e| panic!("{e} for `{}`", entry.text));
        let scan = Plan {
            access: AccessChoice::Scan,
            ..plan.clone()
        };
        let via_scan = execute_query(&entry.statement, &scan, collection, catalog).unwrap();
        assert_eq!(
            via_plan.docs_matched, via_scan.docs_matched,
            "plan/scan disagree for `{}`",
            entry.text
        );
        if via_plan.docs_matched > 0 {
            matched_any = true;
        }
    }
    assert!(matched_any, "no extended query matched any document");
}

#[test]
fn tpox_extended_queries_parse_plan_and_execute() {
    let cfg = TpoxConfig::tiny();
    let mut db = Database::new();
    tpox::generate(&mut db, &cfg);
    let texts = tpox::extended_queries(&cfg);
    assert_eq!(texts.len(), 6);
    let workload = Workload::from_texts(texts.iter().map(|s| s.as_str()))
        .expect("extended TPoX queries parse");
    check_workload(&mut db, &workload);
}

#[test]
fn xmark_extended_queries_parse_plan_and_execute() {
    let cfg = XmarkConfig::tiny();
    let mut db = Database::new();
    xmark::generate(&mut db, &cfg);
    let texts = xmark::extended_queries(&cfg);
    assert_eq!(texts.len(), 5);
    let workload = Workload::from_texts(texts.iter().map(|s| s.as_str()))
        .expect("extended XMark queries parse");
    check_workload(&mut db, &workload);
}

#[test]
fn extended_queries_enumerate_candidates_and_advise() {
    // The advisor handles the full language surface end to end.
    let cfg = TpoxConfig::tiny();
    let mut db = Database::new();
    tpox::generate(&mut db, &cfg);
    let mut texts = tpox::queries(&cfg);
    texts.extend(tpox::extended_queries(&cfg));
    let workload = Workload::from_texts(texts.iter().map(|s| s.as_str())).unwrap();
    let rec = xia_advisor::Advisor::recommend(
        &mut db,
        &workload,
        u64::MAX / 2,
        xia_advisor::SearchAlgorithm::GreedyHeuristics,
        &xia_advisor::AdvisorParams::default(),
    )
    .expect("advise");
    assert!(rec.candidates_basic > 10);
    assert!(rec.speedup > 1.0);
    // The existence pattern over the optional Dividend element is a
    // candidate (structural access).
    let set =
        xia_advisor::Advisor::prepare(&mut db, &workload, &xia_advisor::AdvisorParams::default());
    let pats: Vec<String> = set.iter().map(|c| c.pattern.to_string()).collect();
    assert!(
        pats.iter().any(|p| p.contains("Dividend")),
        "no Dividend candidate in {pats:?}"
    );
}
