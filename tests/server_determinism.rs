//! Concurrency-determinism suite for the warm advisor service.
//!
//! The server's contract: every session is a pure function of its own
//! request stream. N concurrent connections issuing interleaved
//! observe/recommend traffic must produce byte-identical replies,
//! session counters, and journal events to the same per-session scripts
//! replayed serially — clean and with injected faults, at jobs 1 and 4.
//! Server-level gauges (total connections, global request counts) are
//! interleaving-dependent by design and excluded from the comparison.

use xia_bench::experiments::server_warm::{observe_line, recommend_line, Conn};
use xia_obs::json::Json;
use xia_server::{start, ServerConfig, ServerHandle};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};

fn fresh_server(fault_specs: Vec<String>, jobs: Option<usize>) -> (ServerHandle, String) {
    let mut db = Database::new();
    tpox::generate(&mut db, &TpoxConfig::tiny());
    let handle = start(
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            max_connections: 16,
            fault_specs,
            fault_seed: 0xfa57,
            jobs,
            ..Default::default()
        },
        db,
    )
    .expect("loopback listener binds");
    let addr = handle.tcp_addr().expect("tcp listener is up").to_string();
    (handle, addr)
}

/// The request script for session `i`: rotated query order so sessions
/// differ from each other, two observe/recommend cycles (the second one
/// extends the prepared candidates and may cross the drift threshold),
/// then journal and stats.
fn script(i: usize) -> Vec<String> {
    let texts = tpox::queries(&TpoxConfig::tiny());
    let mut rotated = texts.clone();
    rotated.rotate_left(i % texts.len());
    vec![
        observe_line(&rotated[..6]),
        recommend_line(),
        observe_line(&rotated[6..]),
        recommend_line(),
        r#"{"verb":"journal"}"#.to_string(),
        r#"{"verb":"stats"}"#.to_string(),
    ]
}

/// Runs one session's script over one connection, normalizing the stats
/// reply down to its session-scoped half (server gauges depend on what
/// other connections did).
fn run_script(addr: &str, lines: &[String]) -> Vec<String> {
    let mut conn = Conn::connect(addr).expect("connect");
    lines
        .iter()
        .map(|l| {
            let reply = conn.request(l).expect("request");
            match Json::parse(&reply) {
                Ok(v) if v.get("session").is_some() => {
                    v.get("session").expect("just checked").render()
                }
                _ => reply,
            }
        })
        .collect()
}

fn assert_concurrent_matches_serial(fault_specs: Vec<String>, jobs: Option<usize>) {
    const SESSIONS: usize = 4;
    let case = format!("faults={fault_specs:?} jobs={jobs:?}");

    // Serial replay: one connection at a time against a fresh server.
    let (handle, addr) = fresh_server(fault_specs.clone(), jobs);
    let serial: Vec<Vec<String>> = (0..SESSIONS)
        .map(|i| run_script(&addr, &script(i)))
        .collect();
    handle.shutdown();
    handle.join();

    // Concurrent replay: all sessions at once against a fresh server
    // with an identical database.
    let (handle, addr) = fresh_server(fault_specs, jobs);
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || run_script(&addr, &script(i)))
        })
        .collect();
    let concurrent: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("session thread"))
        .collect();
    handle.shutdown();
    handle.join();

    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s.len(), c.len(), "{case}: session {i} transcript length");
        for (step, (a, b)) in s.iter().zip(c).enumerate() {
            assert_eq!(
                a, b,
                "{case}: session {i} step {step} diverges between serial and concurrent replay"
            );
        }
    }
}

#[test]
fn concurrent_sessions_match_serial_replay_clean() {
    assert_concurrent_matches_serial(Vec::new(), Some(1));
    assert_concurrent_matches_serial(Vec::new(), Some(4));
}

#[test]
fn concurrent_sessions_match_serial_replay_with_faults() {
    let specs = vec![
        "optimizer-cost:0.2".to_string(),
        "stats-unavailable:0.1".to_string(),
    ];
    assert_concurrent_matches_serial(specs.clone(), Some(1));
    assert_concurrent_matches_serial(specs, Some(4));
}

#[test]
fn drift_crossing_readvises_exactly_once() {
    let mut db = Database::new();
    tpox::generate(&mut db, &TpoxConfig::tiny());
    let handle = start(
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            drift_threshold: 0.3,
            ..Default::default()
        },
        db,
    )
    .expect("loopback listener binds");
    let addr = handle.tcp_addr().expect("tcp listener is up").to_string();
    let mut conn = Conn::connect(&addr).expect("connect");

    let q_symbol = r#"collection('SDOC')/Security[Symbol = "SYM00001"]"#.to_string();
    let q_yield = r#"collection('SDOC')/Security[Yield > 4.5]"#.to_string();
    conn.request(&observe_line(std::slice::from_ref(&q_symbol)))
        .expect("observe");
    let r = conn.request(&recommend_line()).expect("recommend");
    assert!(r.contains(r#""ok":true"#), "{r}");

    // Shift the template mass: three observations of a new template
    // against a baseline of one crosses a 0.3 total-variation threshold.
    let reply = conn
        .request(&observe_line(&[
            q_yield.clone(),
            q_yield.clone(),
            q_yield.clone(),
        ]))
        .expect("drifting observe");
    assert!(reply.contains(r#""readvised":true"#), "{reply}");
    assert!(reply.contains(r#""recommendation""#), "{reply}");

    // Re-observing the now-dominant template does not drift again — the
    // histogram was rebaselined at the re-advise.
    let reply = conn
        .request(&observe_line(std::slice::from_ref(&q_yield)))
        .expect("steady observe");
    assert!(reply.contains(r#""readvised":false"#), "{reply}");

    let journal = conn.request(r#"{"verb":"journal"}"#).expect("journal");
    let events = journal.matches("drift_detected").count();
    assert_eq!(
        events, 1,
        "expected exactly one drift_detected journal event, got {events}: {journal}"
    );
    handle.shutdown();
    drop(conn);
    handle.join();
}

#[test]
fn hostile_lines_get_error_replies_and_the_server_survives() {
    let (handle, addr) = fresh_server(Vec::new(), None);
    let cases = [
        ("{not json", "input"),
        ("[1,2,3]", "usage"),
        (r#"{"no":"verb"}"#, "usage"),
        (r#"{"verb":"frobnicate"}"#, "usage"),
        (r#"{"verb":"observe"}"#, "usage"),
        (r#"{"verb":"observe","statements":"x"}"#, "usage"),
        (r#"{"verb":"observe","statements":[{"freq":1}]}"#, "usage"),
        (r#"{"verb":"recommend"}"#, "usage"),
        (r#"{"verb":"recommend","budget":-5}"#, "usage"),
        (r#"{"verb":"recommend","budget":1e300}"#, "usage"),
        (
            r#"{"verb":"recommend","budget":1024,"algo":"quantum"}"#,
            "usage",
        ),
    ];
    let mut conn = Conn::connect(&addr).expect("connect");
    for (line, kind) in cases {
        let reply = conn.request(line).expect("error reply, connection kept");
        assert!(reply.contains(r#""ok":false"#), "{line}: {reply}");
        assert!(
            reply.contains(&format!(r#""kind":"{kind}""#)),
            "{line}: expected kind {kind}, got {reply}"
        );
    }
    // The same connection still serves valid traffic afterwards.
    let reply = conn.request(r#"{"verb":"ping"}"#).expect("ping");
    assert!(reply.contains(r#""pong":true"#), "{reply}");

    // An oversized line draws one error reply, then the connection closes
    // (framing is lost) — but the server keeps serving new connections.
    let huge = format!(
        r#"{{"verb":"observe","statements":["{}"]}}"#,
        "x".repeat(xia_server::MAX_LINE_BYTES + 16)
    );
    let reply = conn.request(&huge).expect("oversized reply");
    assert!(reply.contains(r#""ok":false"#), "{reply}");
    assert!(
        conn.request(r#"{"verb":"ping"}"#).is_err(),
        "connection must close"
    );
    let mut conn2 = Conn::connect(&addr).expect("reconnect");
    let reply = conn2
        .request(r#"{"verb":"ping"}"#)
        .expect("ping after hostility");
    assert!(reply.contains(r#""pong":true"#), "{reply}");
    handle.shutdown();
    drop(conn2);
    handle.join();
}
