//! Smoke tests for every experiment, asserting the *shapes* the paper
//! reports (who wins, monotonicity) at a reduced scale.

use xia_advisor::SearchAlgorithm;
use xia_bench::experiments::{
    ablation, candidates, cophy_scaling, generality, generalization, scalability, server_warm,
    speedup_budget, update_cost, xmark_exp,
};

#[test]
fn scalability_grows_subquadratically() {
    let mut lab = TpoxLab::quick();
    let points = scalability::run(&mut lab, &[5, 20]);
    assert_eq!(points.len(), 2);
    assert!(points[1].candidates >= points[0].candidates);
    // Calls grow far slower than the quadratic blowup of naive
    // configuration enumeration.
    let ratio = points[1].optimizer_calls as f64 / points[0].optimizer_calls.max(1) as f64;
    assert!(ratio < 16.0, "calls ratio {ratio}");
}
use xia_bench::TpoxLab;
use xia_workloads::xmark::XmarkConfig;

#[test]
fn datapath_sweep_reports_throughput() {
    let points = scalability::run_datapath(&[1, 2], 2);
    assert_eq!(points.len(), 2);
    // tiny() yields 270 documents per unit factor (60 + 150 + 60).
    assert_eq!(points[0].docs, 270);
    assert_eq!(points[1].docs, 540);
    for p in &points {
        assert!(p.nodes > 0);
        assert!(p.nodes_per_sec > 0.0, "factor {}: {p:?}", p.factor);
        // Columnar RUNSTATS must actually run over columns, not fall back
        // to the document scan (which reports no scan rows).
        assert!(p.scans_per_sec > 0.0, "factor {}: {p:?}", p.factor);
        assert!(p.jobs >= 1);
    }
    assert!(points[1].nodes > points[0].nodes);
    let table = scalability::datapath_table(&points);
    assert_eq!(table.rows.len(), 2);
    let combined = scalability::combined_table(&[], &points);
    assert_eq!(combined.rows.len(), 2);
    assert_eq!(combined.headers.len(), 11);
}

#[test]
fn update_cost_erodes_recommendations_at_high_frequency() {
    let mut lab = TpoxLab::quick();
    let rows = update_cost::run(&mut lab, &[0.0, 2000.0]);
    assert_eq!(rows.len(), 2);
    // A heavy update mix must not *grow* the configuration: maintenance
    // cost prunes or holds the index count.
    assert!(
        rows[1].indexes <= rows[0].indexes,
        "no-updates: {} indexes, heavy updates: {}",
        rows[0].indexes,
        rows[1].indexes
    );
    assert!(rows[0].benefit > 0.0);
}

#[test]
fn fig2_speedup_increases_with_budget_and_caps_at_all_index() {
    let mut lab = TpoxLab::quick();
    let fractions = [0.2, 0.5, 1.0];
    let r = speedup_budget::run(&mut lab, &fractions, &SearchAlgorithm::ALL);
    assert!(r.all_index_speedup > 1.0);
    for (algo, points) in &r.series {
        // Weak monotonicity: more budget never hurts much.
        for w in points.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * 0.95,
                "{}: speedup dropped {} -> {}",
                algo.name(),
                w[0].speedup,
                w[1].speedup
            );
        }
        // Nothing beats the All-Index ceiling meaningfully on the training
        // workload.
        for p in points {
            assert!(
                p.speedup <= r.all_index_speedup * 1.10,
                "{}: {} above ceiling {}",
                algo.name(),
                p.speedup,
                r.all_index_speedup
            );
            assert!(p.size <= p.budget);
        }
    }
    // Paper shape: at the full All-Index budget, heuristics ≥ plain greedy.
    let at_full = |algo: SearchAlgorithm| {
        r.series
            .iter()
            .find(|(a, _)| *a == algo)
            .map(|(_, ps)| ps.last().unwrap().speedup)
            .unwrap()
    };
    assert!(
        at_full(SearchAlgorithm::GreedyHeuristics) >= at_full(SearchAlgorithm::Greedy) * 0.99,
        "heuristics should not lose to plain greedy at full budget"
    );
    let table = speedup_budget::fig2_table(&r);
    assert!(table.render().contains("Fig. 2"));
}

#[test]
fn fig3_reports_time_and_calls() {
    let mut lab = TpoxLab::quick();
    let fractions = [0.5, 1.0];
    let r = speedup_budget::run(
        &mut lab,
        &fractions,
        &[
            SearchAlgorithm::GreedyHeuristics,
            SearchAlgorithm::TopDownFull,
        ],
    );
    for (_, points) in &r.series {
        for p in points {
            assert!(p.optimizer_calls > 0);
        }
    }
    let table = speedup_budget::fig3_table(&r);
    assert!(table.render().contains("calls"));
}

#[test]
fn latency_histogram_table_covers_hists_and_phases() {
    let mut lab = TpoxLab::quick();
    let workload = lab.workload();
    let table =
        speedup_budget::latency_table(&mut lab, &workload, &[SearchAlgorithm::GreedyHeuristics]);
    let text = table.render();
    assert!(text.contains("what_if_call"), "{text}");
    assert!(text.contains("contain_check"), "{text}");
    // Since PR 9 every algorithm records its own search-loop span, so the
    // evaluate phase nests under the algorithm's name.
    assert!(text.contains("phase:advise:search:heuristics"), "{text}");
    assert!(
        text.contains("phase:advise:search:heuristics:evaluate"),
        "{text}"
    );
    // Every row that recorded samples has a sane percentile ladder.
    for row in &table.rows {
        let count: u64 = row[2].parse().unwrap();
        let p50: u64 = row[3].parse().unwrap();
        let max: u64 = row[6].parse().unwrap();
        if count > 0 {
            assert!(p50 <= max, "p50 {p50} > max {max} in {row:?}");
        } else {
            assert_eq!(max, 0, "empty histogram with nonzero max in {row:?}");
        }
    }
    // What-if calls were actually recorded.
    assert!(table
        .rows
        .iter()
        .any(|r| r[1] == "what_if_call" && r[2].parse::<u64>().unwrap() > 0));
}

#[test]
fn e16_cophy_compresses_and_matches_greedy_quality() {
    let mut lab = TpoxLab::quick();
    let rows = cophy_scaling::run(
        &mut lab,
        &[60, 240],
        &[SearchAlgorithm::Cophy, SearchAlgorithm::Greedy],
        240,
    );
    assert_eq!(rows.len(), 4);
    for pair in rows.chunks(2) {
        let (cophy, greedy) = (&pair[0], &pair[1]);
        assert_eq!(cophy.algo, SearchAlgorithm::Cophy);
        assert_eq!(greedy.algo, SearchAlgorithm::Greedy);
        // Compression actually folded statements into templates...
        assert!(cophy.templates > 0);
        assert!(cophy.templates < cophy.n_statements as u64);
        // ...and the call count shrank accordingly while quality held.
        assert!(
            cophy.evaluate_calls < greedy.evaluate_calls,
            "cophy {} calls vs greedy {}",
            cophy.evaluate_calls,
            greedy.evaluate_calls
        );
        assert!(cophy.lp_bound > 0.0);
        let rel = (cophy.est_benefit - greedy.est_benefit).abs() / greedy.est_benefit.max(1.0);
        assert!(
            rel < 0.05,
            "quality diverged: cophy {} vs greedy {}",
            cophy.est_benefit,
            greedy.est_benefit
        );
        // DP cross-check ran on these small sizes and stayed close.
        assert!(cophy.dp_gap_pct.is_finite());
        assert!(cophy.dp_gap_pct < 10.0, "dp gap {}%", cophy.dp_gap_pct);
    }
    // Template growth is sublinear: quadrupling the workload did not
    // quadruple the template count.
    assert!(rows[2].templates < rows[0].templates * 4);
    let t = cophy_scaling::table(&rows);
    assert!(t.render().contains("lp_bound"));
}

#[test]
fn table3_generalization_expands_candidates() {
    let mut lab = TpoxLab::quick();
    let rows = candidates::run(&mut lab, &[10, 20, 30]);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.basic > 0);
        assert!(r.total >= r.basic, "generalization cannot shrink the set");
    }
    // Candidate counts grow with workload size.
    assert!(rows[2].basic >= rows[0].basic);
    // Generalization finds something on at least one workload size.
    assert!(
        rows.iter().any(|r| r.total > r.basic),
        "no generalized candidates found at any size: {rows:?}"
    );
}

#[test]
fn table4_topdown_recommends_more_generals_with_more_budget() {
    let mut lab = TpoxLab::quick();
    let rows = generality::run(&mut lab, &[1.05, 8.0]);
    assert_eq!(rows.len(), 2);
    let g = |row: &generality::GeneralityRow, algo: SearchAlgorithm| {
        row.counts
            .iter()
            .find(|(a, _)| *a == algo)
            .map(|(_, c)| c.general)
            .unwrap()
    };
    // Top-down at the larger budget keeps at least as many generals as at
    // the tight budget.
    assert!(g(&rows[1], SearchAlgorithm::TopDownLite) >= g(&rows[0], SearchAlgorithm::TopDownLite));
    // Heuristics is conservative about generals (paper: almost always 0).
    for row in &rows {
        let heur = g(row, SearchAlgorithm::GreedyHeuristics);
        let td = g(&rows[1], SearchAlgorithm::TopDownLite);
        assert!(
            heur <= td.max(1),
            "heuristics G={heur} exceeds topdown G={td}"
        );
    }
}

#[test]
fn fig4_generalization_closes_gap_with_training_size() {
    let mut lab = TpoxLab::quick();
    let r = generalization::run(&mut lab, &[2, 10, 20], 21.0, false);
    assert!(r.all_index > 1.0);
    let td: Vec<f64> = r.points.iter().map(|p| p.speedups[0]).collect();
    // Training on everything beats training on almost nothing.
    assert!(
        td[2] >= td[0] * 0.95,
        "topdown full-training {} < tiny-training {}",
        td[2],
        td[0]
    );
    // With full training both algorithms approach the All-Index ceiling.
    let last = &r.points[2];
    for s in &last.speedups {
        assert!(
            *s >= r.all_index * 0.5,
            "{s} far below ceiling {}",
            r.all_index
        );
    }
}

#[test]
fn fig5_actual_execution_follows_estimates() {
    let mut lab = TpoxLab::quick();
    let r = generalization::run(&mut lab, &[20], 21.0, true);
    assert!(r.actual);
    assert!(
        r.all_index > 1.0,
        "actual all-index speedup {}",
        r.all_index
    );
    for s in &r.points[0].speedups {
        assert!(*s > 1.0, "actual speedup {s} not > 1 with full training");
    }
}

#[test]
fn xmark_experiment_runs_and_speeds_up() {
    let (points, all_speedup, all_size) = xmark_exp::run(&XmarkConfig::tiny(), &[0.5, 1.0]);
    assert!(all_size > 0);
    assert!(all_speedup > 1.0);
    assert_eq!(points.len(), 2);
    for p in &points {
        for s in &p.speedups {
            assert!(*s >= 1.0);
        }
    }
}

#[test]
fn ablation_machinery_reduces_optimizer_calls() {
    let mut lab = TpoxLab::quick();
    let rows = ablation::run_switches(&mut lab);
    let full = rows
        .iter()
        .find(|r| r.switches == (true, true, true, true))
        .unwrap();
    let none = rows
        .iter()
        .find(|r| r.switches == (false, false, false, false))
        .unwrap();
    assert!(
        full.optimizer_calls < none.optimizer_calls,
        "machinery on: {} calls, off: {} calls",
        full.optimizer_calls,
        none.optimizer_calls
    );
    // The chosen configuration's benefit is essentially unaffected by the
    // evaluation machinery (it is an efficiency device, not an accuracy
    // trade).
    let rel = (full.benefit - none.benefit).abs() / none.benefit.abs().max(1.0);
    assert!(
        rel < 0.05,
        "benefit drifted: {} vs {}",
        full.benefit,
        none.benefit
    );
}

#[test]
fn ablation_beta_zero_blocks_generals() {
    let mut lab = TpoxLab::quick();
    let rows = ablation::run_beta(&mut lab, &[0.0, 1.0]);
    // β = 0 admits a general index only if it is no larger than its
    // specifics combined — rare; β = 1 is permissive.
    assert!(rows[0].general <= rows[1].general);
}

#[test]
fn e17_warm_path_is_byte_identical_and_faster() {
    // Reduced scale: 2 timing rounds, 2 concurrent sessions. The 5x bar
    // belongs to the release-mode `server_overhead_gate`; a debug smoke
    // run only asserts correctness plus a sane warm-path advantage.
    let e = server_warm::run(&xia_workloads::tpox::TpoxConfig::tiny(), 2, 2, 2, None);
    assert!(e.identical, "warm recommendation diverged from cold");
    assert!(
        e.concurrent_identical,
        "a concurrent session's recommendation diverged from cold"
    );
    assert!(e.cold_secs > 0.0 && e.warm_secs > 0.0);
    assert!(
        e.speedup > 1.0,
        "warm repeat recommend slower than a cold run: {:.2}x",
        e.speedup
    );
    assert!(e.throughput_rps > 0.0);
    let t = server_warm::table(&e);
    assert!(t.render().contains("warm speedup"));
    assert_eq!(server_warm::bench_fields(&e).len(), 10);
}
