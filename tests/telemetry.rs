//! Integration tests for the xia-obs telemetry threading: deterministic
//! counter values on the paper's two-statement example, the phase-span
//! tree of a full advisor run, JSON round-tripping of live reports, and
//! the disabled-handle fast path.

use xia_advisor::{Advisor, AdvisorParams, BenefitEvaluator, SearchAlgorithm};
use xia_obs::{Counter, Telemetry, TraceReport};
use xia_storage::Database;
use xia_workloads::Workload;

/// TPoX-flavoured collection like the paper's running example.
fn paper_db() -> Database {
    let mut db = Database::new();
    let c = db.create_collection("SDOC");
    for i in 0..40 {
        c.build_doc("Security", |b| {
            b.leaf(
                "Symbol",
                if i == 0 {
                    "BCIIPRC".to_string()
                } else {
                    format!("S{i}")
                }
                .as_str(),
            );
            b.leaf("Yield", 3.0 + (i % 5) as f64);
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            b.leaf("Sector", if i % 4 == 0 { "Energy" } else { "Tech" });
            b.end();
            b.end();
            b.leaf("Name", format!("N{i}").as_str());
        });
    }
    db
}

/// The paper's two statements (Table I): Q1 yields candidate C1, Q2 yields
/// C2 and C3.
fn paper_workload() -> Workload {
    Workload::from_texts([
        r#"for $sec in SECURITY('SDOC')/Security
           where $sec/Symbol = "BCIIPRC"
           return $sec"#,
        r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
           where $sec/SecInfo/*/Sector = "Energy"
           return <Security>{$sec/Name}</Security>"#,
    ])
    .unwrap()
}

#[test]
fn full_run_populates_counters_and_phase_tree() {
    let mut db = paper_db();
    let w = paper_workload();
    let params = AdvisorParams::default();
    let rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(!rec.config.is_empty());
    let t = &params.telemetry;

    // Deterministic counts from the paper example: one Enumerate-mode call
    // per statement, three basic candidates.
    assert_eq!(t.get(Counter::OptimizerEnumerateCalls), 2);
    assert_eq!(t.get(Counter::CandidatesEnumerated), 3);
    assert!(t.get(Counter::CandidatesGeneralized) > 0);
    assert_eq!(t.get(Counter::CandidatesAdmitted), rec.config.len() as u64);
    // Every candidate (basic + generalized) was sized via stats derivation.
    assert!(t.get(Counter::StatsDerivations) >= t.get(Counter::CandidatesEnumerated));
    assert!(t.get(Counter::OptimizerEvaluateCalls) > 0);
    assert!(t.get(Counter::BenefitEvaluations) > 0);
    assert!(t.get(Counter::VirtualIndexesCreated) > 0);
    assert_eq!(
        t.get(Counter::VirtualIndexesCreated),
        t.get(Counter::VirtualIndexesDropped),
        "every what-if virtual index must be cleaned up"
    );
    assert!(t.get(Counter::IndexMatchingAttempts) > 0);
    assert!(t.get(Counter::SelectivityEstimates) > 0);
    assert!(t.get(Counter::EstIndexBytes) > 0);

    // The acceptance bar: at least 8 distinct non-zero counters.
    let nonzero = t.counters().iter().filter(|&&(_, v)| v > 0).count();
    assert!(
        nonzero >= 8,
        "only {nonzero} non-zero counters: {:?}",
        t.counters()
    );

    // Phase tree: one advise root covering the whole pipeline.
    let roots = t.span_snapshots();
    let advise = roots
        .iter()
        .find(|r| r.name == "advise")
        .expect("advise root span");
    for phase in ["enumerate", "generalize", "size", "search"] {
        assert!(
            advise.child(phase).is_some(),
            "missing {phase} under advise"
        );
    }
    // Benefit evaluation nests inside the per-algorithm search span
    // (`search:<algorithm>:evaluate` since each algorithm records its
    // own search-loop span).
    let algo = advise
        .child("search")
        .unwrap()
        .child("heuristics")
        .expect("per-algorithm span under search");
    assert!(algo.child("evaluate").is_some());
    assert!(t.span_micros("evaluate") > 0);
}

#[test]
fn telemetry_cache_counters_match_eval_stats() {
    let mut db = paper_db();
    let w = paper_workload();
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &w, &params);
    let all: Vec<_> = set.ids().collect();

    // Cache on: second identical evaluation is served from the memo.
    let t = Telemetry::new();
    let mut ev = BenefitEvaluator::new(&mut db, &w, &set);
    ev.set_telemetry(&t);
    let b1 = ev.benefit(&all);
    let evals_after_first = t.get(Counter::OptimizerEvaluateCalls);
    assert!(evals_after_first > 0);
    let b2 = ev.benefit(&all);
    assert_eq!(b1, b2);
    assert_eq!(
        t.get(Counter::OptimizerEvaluateCalls),
        evals_after_first,
        "cached re-evaluation must not call the optimizer"
    );
    assert_eq!(t.get(Counter::BenefitCacheHits), ev.eval_stats().cache_hits);
    assert_eq!(
        t.get(Counter::BenefitCacheMisses),
        ev.eval_stats().cache_misses
    );
    assert!(t.get(Counter::BenefitCacheHits) > 0);

    // Cache off: neither hits nor misses are counted, and the repeat
    // evaluation pays the optimizer calls again. The statement-relevance
    // cache is a separate layer — disable it too so the repeat truly
    // re-costs.
    let t2 = Telemetry::new();
    {
        let mut ev2 = BenefitEvaluator::new(&mut db, &w, &set);
        ev2.set_telemetry(&t2);
        ev2.use_cache = false;
        ev2.prune = false;
        let c1 = ev2.benefit(&all);
        let evals1 = t2.get(Counter::OptimizerEvaluateCalls);
        let c2 = ev2.benefit(&all);
        let evals2 = t2.get(Counter::OptimizerEvaluateCalls);
        assert_eq!(c1, c2, "determinism does not depend on the cache");
        assert_eq!(c1, b1, "cache must not change the benefit value");
        assert_eq!(evals2, 2 * evals1, "uncached repeat re-costs everything");
        assert_eq!(t2.get(Counter::BenefitCacheHits), 0);
        assert_eq!(t2.get(Counter::BenefitCacheMisses), 0);
    }

    // Memo cache off but relevance pruning on: the repeat is served from
    // the per-statement cost cache without further optimizer calls.
    let t3 = Telemetry::new();
    let mut ev3 = BenefitEvaluator::new(&mut db, &w, &set);
    ev3.set_telemetry(&t3);
    ev3.use_cache = false;
    let d1 = ev3.benefit(&all);
    let evals_first = t3.get(Counter::OptimizerEvaluateCalls);
    let d2 = ev3.benefit(&all);
    assert_eq!(d1, d2);
    assert_eq!(d1, b1, "pruning must not change the benefit value");
    assert_eq!(
        t3.get(Counter::OptimizerEvaluateCalls),
        evals_first,
        "statement-cache repeat must not call the optimizer"
    );
    assert!(t3.get(Counter::StmtCacheHits) > 0);
}

#[test]
fn live_report_round_trips_through_json() {
    let mut db = paper_db();
    let w = paper_workload();
    let params = AdvisorParams::default();
    let _rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::TopDownFull,
        &params,
    )
    .expect("advise");
    let mut report = params.telemetry.report();
    // Hostile statement text: quotes, backslashes, control chars, unicode.
    report.push_statement("q \"x\" \\ \t\n \u{1} é €", 123.5, 7.0);
    report.push_statement("plain", 10.0, 10.0);
    let json = report.to_json();
    let back = TraceReport::from_json(&json).expect("round-trip parse");
    assert_eq!(back, report);
    assert_eq!(back.statements[0].statement, "q \"x\" \\ \t\n \u{1} é €");
    assert!(back.counter("optimizer_evaluate_calls").unwrap() > 0);
    assert!(!back.phases.is_empty());
}

#[test]
fn disabled_handle_records_nothing_and_stays_cheap() {
    let mut db = paper_db();
    let w = paper_workload();
    let params = AdvisorParams {
        telemetry: Telemetry::off(),
        ..AdvisorParams::default()
    };
    let rec = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    assert!(!rec.config.is_empty());
    assert_eq!(params.telemetry.get(Counter::OptimizerEvaluateCalls), 0);
    assert!(params.telemetry.span_snapshots().is_empty());
    assert!(params.telemetry.counters().iter().all(|&(_, v)| v == 0));

    // Generous smoke bound on the raw handle overhead: 10M increments on a
    // disabled handle well under a second (it is a branch on None).
    let off = Telemetry::off();
    let start = std::time::Instant::now();
    for _ in 0..10_000_000 {
        off.incr(Counter::SelectivityEstimates);
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "disabled-handle counter path is too slow"
    );
}
