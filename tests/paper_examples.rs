//! The paper's running example, end to end: queries Q1/Q2, the Table I
//! candidates C1–C4, and the generalization walkthrough of Section V.

use xia_advisor::{enumerate_candidates, generalize_pair, generalize_set, Advisor, AdvisorParams};
use xia_storage::Database;
use xia_workloads::Workload;
use xia_xpath::{contain, parse_linear_path, ValueKind};

/// The paper's Q1.
const Q1: &str = r#"
    for $sec in SECURITY('SDOC')/Security
    where $sec/Symbol = "BCIIPRC"
    return $sec
"#;

/// The paper's Q2.
const Q2: &str = r#"
    for $sec in SECURITY('SDOC')/Security[Yield>4.5]
    where $sec/SecInfo/*/Sector = "Energy"
    return <Security>{$sec/Name}</Security>
"#;

fn tpox_like_db() -> Database {
    let mut db = Database::new();
    let c = db.create_collection("SDOC");
    for i in 0..40 {
        c.build_doc("Security", |b| {
            b.leaf(
                "Symbol",
                if i == 0 {
                    "BCIIPRC".to_string()
                } else {
                    format!("S{i}")
                }
                .as_str(),
            );
            b.leaf("Yield", 3.0 + (i % 5) as f64);
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            b.leaf("Sector", if i % 4 == 0 { "Energy" } else { "Tech" });
            b.leaf("Industry", "OilGas");
            b.end();
            b.end();
            b.leaf("Name", format!("Security{i}").as_str());
        });
    }
    db
}

#[test]
fn table1_candidates_c1_c2_c3() {
    let mut db = tpox_like_db();
    let w = Workload::from_texts([Q1, Q2]).unwrap();
    let set = enumerate_candidates(&mut db, &w);
    // C1 string, C2 string, C3 numerical — exactly the paper's Table I.
    let c1 = set.lookup(
        "SDOC",
        &parse_linear_path("/Security/Symbol").unwrap(),
        ValueKind::Str,
    );
    let c2 = set.lookup(
        "SDOC",
        &parse_linear_path("/Security/SecInfo/*/Sector").unwrap(),
        ValueKind::Str,
    );
    let c3 = set.lookup(
        "SDOC",
        &parse_linear_path("/Security/Yield").unwrap(),
        ValueKind::Num,
    );
    assert!(c1.is_some() && c2.is_some() && c3.is_some());
    assert_eq!(set.len(), 3);
}

#[test]
fn table1_candidate_c4_from_generalization() {
    let mut db = tpox_like_db();
    let w = Workload::from_texts([Q1, Q2]).unwrap();
    let mut set = enumerate_candidates(&mut db, &w);
    let created = generalize_set(&mut set);
    // C4 = /Security//* (string), generalizing C1 and C2 but not C3.
    assert_eq!(created.len(), 1);
    let c4 = set.get(created[0]);
    assert_eq!(c4.pattern.to_string(), "/Security//*");
    assert_eq!(c4.kind, ValueKind::Str);
    assert_eq!(c4.children.len(), 2);
}

#[test]
fn section5_generalization_walkthrough() {
    // The worked example of Section V.
    let c1 = parse_linear_path("/Security/Symbol").unwrap();
    let c2 = parse_linear_path("/Security/SecInfo/*/Sector").unwrap();
    let out = generalize_pair(&c1, &c2);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to_string(), "/Security//*");
    // The result covers /Security//Industry-style unseen paths too.
    assert!(contain::covers(
        &out[0],
        &parse_linear_path("/Security/SecInfo/StockInfo/Industry").unwrap()
    ));
}

#[test]
fn dual_language_support_yields_identical_candidates() {
    // Paper Section I: "our XML Index Advisor implementation in DB2
    // supports both XQuery and SQL/XML simply by virtue of the fact that
    // the DB2 query optimizer supports both of these languages".
    let q1_xquery = r#"for $sec in SECURITY('SDOC')/Security
                       where $sec/Symbol = "BCIIPRC"
                       return $sec"#;
    let q1_sqlxml = r#"SELECT * FROM SDOC WHERE XMLEXISTS('$d/Security[Symbol = "BCIIPRC"]')"#;

    let mut db1 = tpox_like_db();
    let w1 = Workload::from_texts([q1_xquery]).unwrap();
    let set1 = enumerate_candidates(&mut db1, &w1);

    let mut db2 = tpox_like_db();
    let w2 = Workload::from_texts([q1_sqlxml]).unwrap();
    let set2 = enumerate_candidates(&mut db2, &w2);

    let mut p1: Vec<String> = set1.iter().map(|c| c.pattern.to_string()).collect();
    let mut p2: Vec<String> = set2.iter().map(|c| c.pattern.to_string()).collect();
    p1.sort();
    p2.sort();
    assert_eq!(p1, p2, "both languages must expose the same candidates");
}

#[test]
fn table2_rule0_rewrites() {
    for (input, expect) in [("/a/*/b", "/a//b"), ("/a/*/*/b", "/a//b")] {
        let p = parse_linear_path(input).unwrap();
        assert_eq!(p.rewrite_rule0().to_string(), expect);
    }
}

#[test]
fn section6c_subconfiguration_example() {
    // "Because C2 and C3 are enumerated from the same query Q2, we merge
    // their sub-configurations, which gives {C1} and {C2, C3}."
    let mut db = tpox_like_db();
    let w = Workload::from_texts([Q1, Q2]).unwrap();
    let set = {
        let mut s = enumerate_candidates(&mut db, &w);
        generalize_set(&mut s);
        xia_advisor::enumerate::size_candidates(&mut db, &mut s);
        s
    };
    let c1 = set
        .lookup(
            "SDOC",
            &parse_linear_path("/Security/Symbol").unwrap(),
            ValueKind::Str,
        )
        .unwrap();
    let c2 = set
        .lookup(
            "SDOC",
            &parse_linear_path("/Security/SecInfo/*/Sector").unwrap(),
            ValueKind::Str,
        )
        .unwrap();
    let c3 = set
        .lookup(
            "SDOC",
            &parse_linear_path("/Security/Yield").unwrap(),
            ValueKind::Num,
        )
        .unwrap();
    let ev = xia_advisor::BenefitEvaluator::new(&mut db, &w, &set);
    let groups = ev.decompose(&[c1, c2, c3]);
    assert_eq!(groups.len(), 2);
    let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
    assert!(sizes.contains(&1) && sizes.contains(&2));
    let pair = groups.iter().find(|g| g.len() == 2).unwrap();
    assert!(pair.contains(&c2) && pair.contains(&c3));
}

#[test]
fn advisor_on_paper_workload_recommends_the_selective_indexes() {
    // A larger, more selective instance: 400 securities, 12 sectors.
    let mut db = Database::new();
    let c = db.create_collection("SDOC");
    let sectors = [
        "Energy", "Tech", "Finance", "Health", "Retail", "Util", "Mining", "Media", "Agri", "Auto",
        "Aero", "Chem",
    ];
    for i in 0..400 {
        c.build_doc("Security", |b| {
            b.leaf(
                "Symbol",
                if i == 0 {
                    "BCIIPRC".to_string()
                } else {
                    format!("S{i}")
                }
                .as_str(),
            );
            b.leaf("Yield", (i % 100) as f64 / 10.0);
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            b.leaf("Sector", sectors[i % sectors.len()]);
            b.end();
            b.end();
            b.leaf("Name", format!("Security{i}").as_str());
        });
    }
    let w = Workload::from_texts([Q1, Q2]).unwrap();
    let params = AdvisorParams::default();
    // Greedy-with-heuristics picks the *specific* symbol index; top-down
    // picks a *general* index covering it — the Table IV contrast — and
    // both must reach the same benefit on the training workload.
    let gh = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        xia_advisor::SearchAlgorithm::GreedyHeuristics,
        &params,
    )
    .expect("advise");
    let gh_patterns: Vec<&str> = gh.indexes.iter().map(|i| i.pattern.as_str()).collect();
    assert!(gh_patterns.contains(&"/Security/Symbol"), "{gh_patterns:?}");
    assert!(gh.speedup > 1.0);

    let td = Advisor::recommend(
        &mut db,
        &w,
        u64::MAX / 2,
        xia_advisor::SearchAlgorithm::TopDownFull,
        &params,
    )
    .expect("advise");
    assert!(td.general_count >= 1, "{:?}", td.indexes);
    // Every top-down index covers the symbol pattern (tight coupling: it
    // is usable for Q1).
    let symbol = parse_linear_path("/Security/Symbol").unwrap();
    assert!(td
        .indexes
        .iter()
        .any(|i| contain::covers(&parse_linear_path(&i.pattern).unwrap(), &symbol)));
    let rel = (td.est_benefit - gh.est_benefit).abs() / gh.est_benefit.max(1.0);
    assert!(rel < 0.2, "td={} gh={}", td.est_benefit, gh.est_benefit);
}
