//! Workload drift: why general indexes matter (paper Section VI-B).
//!
//! Trains the advisor on a small training workload, then confronts the
//! recommended configurations with a *drifted* workload containing queries
//! the advisor never saw. Top-down's general indexes keep serving the new
//! queries; greedy-with-heuristics' specific indexes do not.
//!
//! ```sh
//! cargo run --release --example workload_drift
//! ```

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_optimizer::Optimizer;
use xia_storage::Database;
use xia_workloads::Workload;

fn main() {
    let mut db = Database::new();
    let coll = db.create_collection("SDOC");
    // Securities with many sibling leaves under SecInfo so there is room
    // for unseen-but-similar query patterns.
    let leaves = ["Sector", "Industry", "SubSector", "Region", "Exchange"];
    let filler = "prospectus liquidity covenant settlement clearing custodian ".repeat(30);
    for i in 0..400 {
        coll.build_doc("Security", |b| {
            b.leaf("Symbol", format!("SYM{i:05}").as_str());
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            for (k, leaf) in leaves.iter().enumerate() {
                b.leaf(leaf, format!("{leaf}-{}", (i + k) % 12).as_str());
            }
            b.end();
            b.end();
            // Realistic document bulk (real TPoX docs are several KB).
            b.leaf("Prospectus", filler.as_str());
        });
    }

    // Training: queries over two of the five leaves.
    let training = Workload::from_texts([
        r#"for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/Sector = "Sector-3" return $s"#,
        r#"for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/Industry = "Industry-5" return $s"#,
    ])
    .expect("training parses");

    // Drifted workload: same shape, *different* leaves.
    let drifted = Workload::from_texts([
        r#"for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/SubSector = "SubSector-2" return $s"#,
        r#"for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/Region = "Region-7" return $s"#,
        r#"for $s in SECURITY('SDOC')/Security where $s/SecInfo/*/Exchange = "Exchange-1" return $s"#,
    ])
    .expect("drifted parses");

    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &training, &params);
    let budget = 4 * set.config_size(&Advisor::all_index_config(&set));

    println!(
        "training on {} queries, budget {} bytes\n",
        training.len(),
        budget
    );
    for algo in [
        SearchAlgorithm::GreedyHeuristics,
        SearchAlgorithm::TopDownLite,
    ] {
        let rec = Advisor::recommend_prepared(&mut db, &training, &set, budget, algo, &params)
            .expect("advise");
        println!("{}:", algo.name());
        for ix in &rec.indexes {
            println!(
                "  {} [{}] {}",
                ix.pattern,
                ix.kind,
                if ix.general { "(general)" } else { "" }
            );
        }
        // How many *drifted* statements can use the recommendation?
        Advisor::materialize(&mut db, &set, &rec.config);
        db.runstats_all();
        let mut usable = 0;
        for entry in drifted.entries() {
            let (collection, catalog, stats) = db.parts("SDOC").expect("SDOC exists");
            let optimizer = Optimizer::new(collection, stats, catalog);
            if optimizer.optimize(&entry.statement).uses_indexes() {
                usable += 1;
            }
        }
        println!(
            "  → {usable}/{} unseen queries can use this configuration\n",
            drifted.len()
        );
        if let Some(cat) = db.catalog_mut("SDOC") {
            cat.drop_all();
        }
    }
}
