//! XMark advisor session: the paper's secondary benchmark.
//!
//! Generates the XMark-like auction collection, tunes for its query
//! workload, and prints the recommended DDL per budget.
//!
//! ```sh
//! cargo run --release --example xmark_advisor
//! ```

use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_storage::Database;
use xia_workloads::xmark::{self, XmarkConfig};
use xia_workloads::Workload;

fn main() {
    let cfg = XmarkConfig::default();
    let mut db = Database::new();
    println!(
        "generating XMark-like data ({} items, {} persons, {} auctions)...",
        cfg.items, cfg.persons, cfg.auctions
    );
    xmark::generate(&mut db, &cfg);

    let workload = Workload::from_texts(xmark::queries(&cfg).iter().map(|s| s.as_str()))
        .expect("xmark queries parse");
    println!("workload: {} queries\n", workload.len());

    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &workload, &params);
    let all_size = set.config_size(&Advisor::all_index_config(&set));

    for frac in [0.25, 0.5, 1.0] {
        let budget = (all_size as f64 * frac) as u64;
        let rec = Advisor::recommend_prepared(
            &mut db,
            &workload,
            &set,
            budget,
            SearchAlgorithm::TopDownFull,
            &params,
        )
        .expect("advise");
        println!(
            "budget {:>7} bytes ({:.0}% of All-Index): speedup {:.2}x with {} indexes",
            budget,
            frac * 100.0,
            rec.speedup,
            rec.indexes.len()
        );
        for ix in &rec.indexes {
            println!(
                "  CREATE INDEX ON {} PATTERN '{}' AS {}{}",
                ix.collection,
                ix.pattern,
                ix.kind,
                if ix.general { "   -- general" } else { "" }
            );
        }
        println!();
    }
}
