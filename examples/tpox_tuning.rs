//! TPoX tuning session: the paper's primary evaluation scenario.
//!
//! Generates the three TPoX-like collections, tunes for the 11-query
//! workload plus an update mix under several disk budgets, compares all
//! five search algorithms, then materializes the winning configuration and
//! measures the *actual* (executed) speedup.
//!
//! ```sh
//! cargo run --release --example tpox_tuning
//! ```

use std::time::Instant;
use xia_advisor::{Advisor, AdvisorParams, SearchAlgorithm};
use xia_optimizer::{execute_query, Optimizer};
use xia_storage::Database;
use xia_workloads::tpox::{self, TpoxConfig};
use xia_workloads::Workload;

fn main() {
    let cfg = TpoxConfig::default();
    let mut db = Database::new();
    println!(
        "generating TPoX-like data ({} securities, {} orders, {} customers)...",
        cfg.securities, cfg.orders, cfg.customers
    );
    tpox::generate(&mut db, &cfg);

    let mut texts = tpox::queries(&cfg);
    texts.extend(tpox::update_mix(&cfg));
    let workload = Workload::from_texts(texts.iter().map(|s| s.as_str())).expect("parses");
    println!(
        "workload: {} statements ({} queries, {} updates)\n",
        workload.len(),
        workload
            .entries()
            .iter()
            .filter(|e| !e.statement.is_modification())
            .count(),
        workload
            .entries()
            .iter()
            .filter(|e| e.statement.is_modification())
            .count(),
    );

    // Tune under a sweep of budgets.
    let params = AdvisorParams::default();
    let set = Advisor::prepare(&mut db, &workload, &params);
    let all_size = set.config_size(&Advisor::all_index_config(&set));
    println!(
        "candidates: {} basic, {} total; All-Index size {:.1} KiB\n",
        set.basic_ids().len(),
        set.len(),
        all_size as f64 / 1024.0
    );

    println!(
        "{:<14} {:>10} {:>9} {:>8} {:>7} {:>11}",
        "algorithm", "budget", "speedup", "indexes", "G/S", "opt. calls"
    );
    let mut best: Option<(SearchAlgorithm, Vec<xia_advisor::CandId>, f64)> = None;
    for frac in [0.25, 0.5, 1.0] {
        let budget = (all_size as f64 * frac) as u64;
        for algo in SearchAlgorithm::ALL {
            let rec = Advisor::recommend_prepared(&mut db, &workload, &set, budget, algo, &params)
                .expect("advise");
            println!(
                "{:<14} {:>9.2}x {:>8.2}x {:>8} {:>3}/{:<3} {:>11}",
                algo.name(),
                frac,
                rec.speedup,
                rec.indexes.len(),
                rec.general_count,
                rec.specific_count,
                rec.eval_stats.optimizer_calls
            );
            if best.as_ref().is_none_or(|(_, _, s)| rec.speedup > *s) {
                best = Some((algo, rec.config.clone(), rec.speedup));
            }
        }
    }
    let (algo, config, est) = best.expect("at least one recommendation");
    println!(
        "\nbest: {} (estimated {est:.2}x) — materializing and executing...",
        algo.name()
    );

    // Actual speedup: execute the query side with and without the indexes.
    let queries: Vec<&str> = texts[..11].iter().map(|s| s.as_str()).collect();
    let query_workload = Workload::from_texts(queries).expect("parses");
    let t_scan = run_queries(&mut db, &query_workload);
    Advisor::materialize(&mut db, &set, &config);
    db.runstats_all();
    let t_indexed = run_queries(&mut db, &query_workload);
    println!(
        "actual execution: {:.1} ms without indexes, {:.1} ms with — {:.1}x",
        t_scan * 1e3,
        t_indexed * 1e3,
        t_scan / t_indexed.max(1e-9)
    );
}

fn run_queries(db: &mut Database, workload: &Workload) -> f64 {
    db.runstats_all();
    let start = Instant::now();
    for entry in workload.entries() {
        let coll = entry.statement.collection();
        let (collection, catalog, stats) = db.parts(coll).expect("collection exists");
        let optimizer = Optimizer::new(collection, stats, catalog);
        let plan = optimizer.optimize(&entry.statement);
        execute_query(&entry.statement, &plan, collection, catalog).expect("plan executes");
    }
    start.elapsed().as_secs_f64()
}
