//! Quickstart: the paper's running example end to end.
//!
//! Builds a small TPoX-like security collection, runs the two queries of
//! the paper (Q1/Q2) through the advisor, and prints the enumerated
//! candidates (Table I), the generalization (C4), and the recommended
//! configuration.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xia_advisor::{enumerate_candidates, generalize_set, Advisor, AdvisorParams, SearchAlgorithm};
use xia_storage::Database;
use xia_workloads::Workload;

fn main() {
    // 1. Load data: one XML collection ("XML column") of Security docs.
    let mut db = Database::new();
    let coll = db.create_collection("SDOC");
    let sectors = ["Energy", "Tech", "Finance", "Health", "Retail", "Util"];
    for i in 0..300 {
        coll.build_doc("Security", |b| {
            b.leaf(
                "Symbol",
                if i == 0 {
                    "BCIIPRC".to_string()
                } else {
                    format!("SYM{i:04}")
                }
                .as_str(),
            );
            b.leaf("Name", format!("Security {i}").as_str());
            b.begin("SecInfo");
            b.begin(if i % 2 == 0 { "StockInfo" } else { "FundInfo" });
            b.leaf("Sector", sectors[i % sectors.len()]);
            b.end();
            b.end();
            b.leaf("Yield", (i % 100) as f64 / 10.0);
        });
    }
    println!(
        "loaded {} documents, {} distinct rooted paths\n",
        coll.len(),
        coll.vocab().paths.len()
    );

    // 2. The training workload — the paper's Q1 and Q2.
    let workload = Workload::from_texts([
        r#"for $sec in SECURITY('SDOC')/Security
           where $sec/Symbol = "BCIIPRC"
           return $sec"#,
        r#"for $sec in SECURITY('SDOC')/Security[Yield>4.5]
           where $sec/SecInfo/*/Sector = "Energy"
           return <Security>{$sec/Name}</Security>"#,
    ])
    .expect("workload parses");

    // 3. Enumerate basic candidates via the optimizer's Enumerate Indexes
    //    mode (the //* virtual-index trick) — the paper's Table I.
    let mut set = enumerate_candidates(&mut db, &workload);
    println!("basic candidates (optimizer Enumerate Indexes mode):");
    for c in set.iter() {
        println!("  {} {} [{}]", c.collection, c.pattern, c.kind);
    }

    // 4. Generalize (Algorithm 1 + Table II) — adds C4 = /Security//*.
    let created = generalize_set(&mut set);
    println!("\ngeneralized candidates:");
    for id in &created {
        let c = set.get(*id);
        println!(
            "  {} {} [{}] (covers {} basics)",
            c.collection,
            c.pattern,
            c.kind,
            c.children.len()
        );
    }

    // 5. Recommend a configuration under a disk budget.
    let budget = 64 * 1024; // 64 KiB for this toy data
    println!("\nrecommendations under a {budget}-byte budget:");
    for algo in [
        SearchAlgorithm::GreedyHeuristics,
        SearchAlgorithm::TopDownFull,
    ] {
        let rec = Advisor::recommend(&mut db, &workload, budget, algo, &AdvisorParams::default())
            .expect("advise");
        println!(
            "  {:<13} speedup {:.2}x, {} indexes ({} general, {} specific), {} bytes, {} optimizer calls",
            algo.name(),
            rec.speedup,
            rec.indexes.len(),
            rec.general_count,
            rec.specific_count,
            rec.total_size,
            rec.eval_stats.optimizer_calls,
        );
        for ix in &rec.indexes {
            println!(
                "      CREATE INDEX ON {} PATTERN '{}' AS {}",
                ix.collection, ix.pattern, ix.kind
            );
        }
    }
}
